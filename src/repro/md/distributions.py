"""Initial particle distributions among the parallel processes.

Sect. IV-B of the paper compares three initial distributions:

* ``"single"`` — all particles on one single process (the communication
  bottleneck case),
* ``"random"`` — uniformly random distribution of particles among
  processes,
* ``"grid"`` — a domain decomposition that distributes particles uniformly
  among a Cartesian process grid (each particle on the rank owning its
  position).

:func:`distribute` splits a generated :class:`~repro.md.systems
.ParticleSystem` accordingly and returns both the solver-facing
:class:`~repro.core.particles.ParticleSet` and the distributed
application-side data (velocities), plus the assignment for test
verification.

Beyond the paper's homogeneous silica melt, :func:`clustered_system`
generates the **inhomogeneous** workloads of the load-balancing subsystem
(:mod:`repro.core.balance`): a Plummer sphere (the astrophysical
density-cusp standard), a two-cluster system (the worst case for
equal-count partitioning: half the ranks idle while the cluster owners
serialize), and an exponential slab (smooth density gradient).  All are
charge-neutral ±1 ion systems in the same periodic box convention as
:func:`~repro.md.systems.silica_melt_system`, so every solver runs them
unchanged.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.particles import ParticleSet
from repro.md.systems import PAPER_BOX_EDGE, PAPER_N, ParticleSystem
from repro.simmpi.cart import CartGrid

__all__ = ["distribute", "clustered_system", "CLUSTERED_KINDS", "DISTRIBUTIONS"]

DISTRIBUTIONS = ("single", "random", "grid")

#: the inhomogeneous system generators of :func:`clustered_system`
CLUSTERED_KINDS = ("plummer", "two-cluster", "exponential-slab")


def clustered_system(
    kind: str,
    n: int,
    box_edge: float | None = None,
    seed: int = 0,
) -> ParticleSystem:
    """Generate an inhomogeneous (clustered) charge-neutral particle system.

    Parameters
    ----------
    kind:
        ``"plummer"`` — a Plummer sphere centered in the box (scale radius
        ``box_edge / 12``, radii clipped to stay inside the box);
        ``"two-cluster"`` — two tight Gaussian blobs (σ = ``box_edge /
        16``) at opposite box octants holding half the particles, embedded
        in a uniform background holding the other half (the density
        *contrast* is what makes equal-count partitioning serialize the
        cluster owners);
        ``"exponential-slab"`` — exponential density decay along x (scale
        ``box_edge / 8``), uniform in y/z.
    n:
        number of ions (even, for exact charge neutrality).
    box_edge:
        cubic box edge; defaults to the paper's density convention
        ``248 * (n / 829440)^(1/3)`` so clustered and homogeneous systems
        of equal ``n`` occupy identical boxes.
    seed:
        RNG seed (deterministic generation).

    Charges alternate ±1 and are shuffled, so any contiguous split is
    near-neutral; initial velocities are zero.
    """
    if kind not in CLUSTERED_KINDS:
        raise ValueError(f"unknown clustered kind {kind!r}; pick from {CLUSTERED_KINDS}")
    if n < 2 or n % 2:
        raise ValueError(f"n must be even and >= 2, got {n}")
    if box_edge is None:
        box_edge = PAPER_BOX_EDGE * (n / PAPER_N) ** (1.0 / 3.0)
    box = np.asarray([box_edge] * 3, dtype=np.float64)
    rng = np.random.default_rng(seed)
    center = box / 2.0

    if kind == "plummer":
        # Plummer profile: r = a / sqrt(u^(-2/3) - 1); clip the heavy tail
        # so every particle stays inside the periodic box
        a = box_edge / 12.0
        u = rng.uniform(1e-8, 1.0 - 1e-8, n)
        r = a / np.sqrt(np.power(u, -2.0 / 3.0) - 1.0)
        r = np.minimum(r, 0.45 * box_edge)
        direction = rng.normal(size=(n, 3))
        norm = np.linalg.norm(direction, axis=1, keepdims=True)
        norm[norm == 0] = 1.0
        pos = center + direction / norm * r[:, None]
    elif kind == "two-cluster":
        sigma = box_edge / 16.0
        centers = np.asarray(
            [[0.25, 0.25, 0.25], [0.75, 0.75, 0.75]], dtype=np.float64
        ) * box_edge
        n_cluster = n // 2
        half = n_cluster // 2
        which = np.repeat(np.arange(2), (half, n_cluster - half))
        blob = centers[which] + rng.normal(scale=sigma, size=(n_cluster, 3))
        background = rng.uniform(0.0, box_edge, (n - n_cluster, 3))
        pos = np.concatenate([blob, background])
    else:  # exponential-slab
        scale = box_edge / 8.0
        x = rng.exponential(scale, n) % box_edge
        yz = rng.uniform(0.0, box_edge, (n, 2))
        pos = np.column_stack([x, yz])
    pos = np.mod(pos, box_edge)

    q = np.where(np.arange(n) % 2 == 0, 1.0, -1.0)
    perm = rng.permutation(n)
    pos = pos[perm]
    q = q[perm]
    vel = np.zeros((n, 3), dtype=np.float64)
    return ParticleSystem(pos=pos, q=q, vel=vel, box=box, offset=np.zeros(3))


def distribute(
    system: ParticleSystem,
    nprocs: int,
    kind: str,
    seed: int = 0,
    capacity_factor: float = 3.0,
) -> Tuple[ParticleSet, List[np.ndarray], np.ndarray]:
    """Distribute a particle system among ``nprocs`` ranks.

    Returns ``(particle_set, velocities_per_rank, owner)`` where ``owner``
    maps each global particle index to its initial rank.
    """
    n = system.n
    if kind == "single":
        owner = np.zeros(n, dtype=np.int64)
    elif kind == "random":
        rng = np.random.default_rng(seed)
        owner = rng.integers(0, nprocs, n)
    elif kind == "grid":
        grid = CartGrid(nprocs, system.box, system.offset, periodic=True)
        owner = grid.rank_of_positions(system.pos)
    else:
        raise ValueError(f"unknown distribution {kind!r}; pick from {DISTRIBUTIONS}")

    pos_r = [np.ascontiguousarray(system.pos[owner == r]) for r in range(nprocs)]
    q_r = [np.ascontiguousarray(system.q[owner == r]) for r in range(nprocs)]
    vel_r = [np.ascontiguousarray(system.vel[owner == r]) for r in range(nprocs)]
    # the "single" distribution needs capacity for the whole system on rank
    # 0 and for a balanced share everywhere else
    if kind == "single":
        capacities = [max(n, 1)] * nprocs
    else:
        per = max(1, -(-n // nprocs))
        capacities = [int(np.ceil(capacity_factor * per))] * nprocs
        capacities = [max(c, p.shape[0]) for c, p in zip(capacities, pos_r)]
    pset = ParticleSet(pos_r, q_r, capacities=capacities)
    return pset, vel_r, owner
