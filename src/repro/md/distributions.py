"""Initial particle distributions among the parallel processes.

Sect. IV-B of the paper compares three initial distributions:

* ``"single"`` — all particles on one single process (the communication
  bottleneck case),
* ``"random"`` — uniformly random distribution of particles among
  processes,
* ``"grid"`` — a domain decomposition that distributes particles uniformly
  among a Cartesian process grid (each particle on the rank owning its
  position).

:func:`distribute` splits a generated :class:`~repro.md.systems
.ParticleSystem` accordingly and returns both the solver-facing
:class:`~repro.core.particles.ParticleSet` and the distributed
application-side data (velocities), plus the assignment for test
verification.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.particles import ParticleSet
from repro.md.systems import ParticleSystem
from repro.simmpi.cart import CartGrid

__all__ = ["distribute", "DISTRIBUTIONS"]

DISTRIBUTIONS = ("single", "random", "grid")


def distribute(
    system: ParticleSystem,
    nprocs: int,
    kind: str,
    seed: int = 0,
    capacity_factor: float = 3.0,
) -> Tuple[ParticleSet, List[np.ndarray], np.ndarray]:
    """Distribute a particle system among ``nprocs`` ranks.

    Returns ``(particle_set, velocities_per_rank, owner)`` where ``owner``
    maps each global particle index to its initial rank.
    """
    n = system.n
    if kind == "single":
        owner = np.zeros(n, dtype=np.int64)
    elif kind == "random":
        rng = np.random.default_rng(seed)
        owner = rng.integers(0, nprocs, n)
    elif kind == "grid":
        grid = CartGrid(nprocs, system.box, system.offset, periodic=True)
        owner = grid.rank_of_positions(system.pos)
    else:
        raise ValueError(f"unknown distribution {kind!r}; pick from {DISTRIBUTIONS}")

    pos_r = [np.ascontiguousarray(system.pos[owner == r]) for r in range(nprocs)]
    q_r = [np.ascontiguousarray(system.q[owner == r]) for r in range(nprocs)]
    vel_r = [np.ascontiguousarray(system.vel[owner == r]) for r in range(nprocs)]
    # the "single" distribution needs capacity for the whole system on rank
    # 0 and for a balanced share everywhere else
    if kind == "single":
        capacities = [max(n, 1)] * nprocs
    else:
        per = max(1, -(-n // nprocs))
        capacities = [int(np.ceil(capacity_factor * per))] * nprocs
        capacities = [max(c, p.shape[0]) for c, p in zip(capacities, pos_r)]
    pset = ParticleSet(pos_r, q_r, capacities=capacities)
    return pset, vel_r, owner
