"""The coupled particle dynamics simulation (Fig. 3 of the paper).

:class:`Simulation` wires the pieces together: a generated particle system,
one of the three initial distributions, a solver behind the ScaFaCoS-like
``FCS`` handle, the leapfrog integrator, and one of the redistribution
methods:

* ``method="A"`` — the library restores the original particle order and
  distribution after every ``fcs_run`` (Sect. III-A),
* ``method="B"`` — the application adopts the solver-specific order and
  distribution; after each run the velocities, accelerations and particle
  identities are redistributed with the solver-created resort indices
  (Sect. III-B) in one fused plan-based ``fcs.resort`` exchange,
* ``method="B+move"`` — additionally the maximum particle movement measured
  during the position update is passed to the solver, enabling the
  merge-based parallel sorting (FMM) / neighborhood communication (P2NFFT).

Every step produces a :class:`StepRecord` with the per-phase virtual-time
deltas — the data behind each of the paper's figures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.core.balance import LOAD_BALANCE_MODES, ImbalanceMonitor
from repro.core.handle import FCS, fcs_init
from repro.md.distributions import distribute
from repro.md.integrator import accelerations, position_update, velocity_update
from repro.md.observables import kinetic_energy, potential_energy
from repro.md.systems import ParticleSystem
from repro.obs.spans import machine_span
from repro.simmpi.machine import Machine
from repro.simmpi.tracing import PhaseStats

__all__ = ["Simulation", "SimulationConfig", "StepRecord"]

METHODS = ("A", "B", "B+move", "adaptive")


@dataclasses.dataclass
class SimulationConfig:
    """Knobs of the coupled simulation."""

    solver: str = "fmm"
    method: str = "A"
    dt: float = 0.01
    accuracy: float = 1e-3
    distribution: str = "random"
    track_energy: bool = False
    mass: float = 1.0
    seed: int = 0
    solver_kwargs: dict = dataclasses.field(default_factory=dict)
    #: ``"force"`` integrates the solver's fields (full physics);
    #: ``"brownian"`` replaces the forces by persistent randomly rotating
    #: velocities of fixed per-step displacement ``brownian_step`` — a
    #: surrogate for the melt's diffusive drift used by the long-running
    #: redistribution benchmarks (all redistribution stays data-real)
    dynamics: str = "force"
    brownian_step: float = 0.05
    #: for ``method="adaptive"``: how many steps between re-evaluations of
    #: the A-vs-B choice (an extension beyond the paper: the application
    #: trials both redistribution methods online and keeps the cheaper one)
    adapt_every: int = 25
    #: redistribute velocities, accelerations and ids in one fused
    #: plan-based exchange (the default); ``False`` issues one exchange per
    #: column through the same plan engine — the A/B knob behind the resort
    #: benchmarks
    fuse_resort: bool = True
    #: optional :class:`~repro.simmpi.chaos.Perturbation` applied to the
    #: machine before any cost is charged (the DST chaos harness); ``None``
    #: leaves the machine untouched
    perturbation: Optional[object] = None
    #: weighted-partition load balancing (:mod:`repro.core.balance`):
    #: ``"off"`` keeps the historical count-based partitioning bit-for-bit;
    #: ``"static"`` rebalances once on the first solver run; ``"dynamic"``
    #: attaches an :class:`~repro.core.balance.ImbalanceMonitor` that
    #: triggers rebalances when λ = max/mean rank work crosses
    #: ``balance_trigger`` (with ``balance_rearm`` hysteresis).  Only
    #: solvers with ``supports_rebalance`` (the FMM) ever repartition;
    #: others record the mode and ignore it.
    load_balance: str = "off"
    balance_trigger: float = 1.5
    balance_rearm: float = 1.15
    #: local array over-allocation passed to
    #: :func:`~repro.md.distributions.distribute` — method B adopts a
    #: changed layout only when it fits (Sect. III-B), and a *weighted*
    #: layout is count-unequal by design, so balanced runs typically need
    #: more headroom than the homogeneous default
    capacity_factor: float = 3.0
    #: trace phases whose per-rank nominal work feeds λ — near is the
    #: distribution-sensitive cost, far is count-proportional, and the
    #: weighted splitter balances their sum, so λ watches both
    balance_phases: tuple = ("near", "far")
    #: write a :mod:`repro.ckpt` checkpoint to ``checkpoint_dir`` every N
    #: steps (after initialization and whenever ``step_index % N == 0``);
    #: 0 disables auto-checkpointing.  Checkpoint capture is an out-of-band
    #: observation and charges no machine cost, so a checkpointed run's
    #: trace is bitwise that of an uncheckpointed one.
    checkpoint_every: int = 0
    #: target directory for auto-checkpoints (files named
    #: ``step-NNNNNN.ckpt.ndjson``); required when ``checkpoint_every > 0``
    checkpoint_dir: Optional[str] = None
    #: execution backend hosting the payload data plane: ``None`` (default)
    #: leaves the machine's current attachment untouched, ``"inprocess"`` /
    #: ``"process"`` / ``"process:N"`` resolve via
    #: :func:`repro.backend.resolve_backend`, or pass a live
    #: :class:`~repro.backend.ExecutionBackend`.  Purely a hosting choice:
    #: traces, ledgers and state fingerprints are backend-independent
    #: (see ``docs/backends.md``)
    backend: object = None
    #: collective-algorithm spec (:func:`repro.simmpi.algos.parse_algos`
    #: grammar, e.g. ``"bruck"`` or ``"alltoallv=pairwise+allreduce=
    #: binomial-tree"``): routes the named collectives through staged
    #: algorithm engines instead of the direct one-shot model.  Recv
    #: payloads are bitwise-identical by contract; only modeled clocks and
    #: message/byte counts move (see ``docs/collectives.md``).  ``None`` or
    #: ``"direct"`` keeps the default direct path everywhere.
    collective_algos: Optional[str] = None

    def __post_init__(self) -> None:
        """Reject unknown or conflicting knobs up front.

        A mistyped knob silently running the default scenario is the worst
        failure mode of a benchmark harness — every constraint below raises
        immediately with the accepted values spelled out.  Note what is
        deliberately *not* checked here: the solver name (``fcs_init``
        already raises with the live registry contents, which may grow via
        ``register_solver`` after this config is built) and
        ``load_balance="dynamic"`` with non-rebalanceable solvers or with
        method A (legal — the mode is recorded and simply never fires, a
        combination the conformance and DST suites exercise on purpose).
        """
        from repro.md.distributions import DISTRIBUTIONS

        if self.method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {self.method!r}")
        if self.dynamics not in ("force", "brownian"):
            raise ValueError(
                f"dynamics must be 'force' or 'brownian', got {self.dynamics!r}"
            )
        if self.load_balance not in LOAD_BALANCE_MODES:
            raise ValueError(
                f"load_balance must be one of {LOAD_BALANCE_MODES}, "
                f"got {self.load_balance!r}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if not isinstance(self.solver_kwargs, dict):
            raise ValueError(
                "solver_kwargs must be a dict of solver constructor arguments, "
                f"got {type(self.solver_kwargs).__name__}"
            )
        for knob, value, low in (
            ("dt", self.dt, 0.0),
            ("accuracy", self.accuracy, 0.0),
            ("mass", self.mass, 0.0),
        ):
            if not value > low:
                raise ValueError(f"{knob} must be > {low}, got {value!r}")
        if self.brownian_step < 0:
            raise ValueError(
                f"brownian_step must be >= 0, got {self.brownian_step!r}"
            )
        if self.adapt_every < 1:
            raise ValueError(f"adapt_every must be >= 1, got {self.adapt_every!r}")
        if self.capacity_factor < 1.0:
            raise ValueError(
                f"capacity_factor must be >= 1 (arrays cannot shrink below "
                f"their particle count), got {self.capacity_factor!r}"
            )
        if not self.balance_trigger >= self.balance_rearm >= 1.0:
            raise ValueError(
                "conflicting balance knobs: need balance_trigger >= "
                f"balance_rearm >= 1 (hysteresis), got trigger="
                f"{self.balance_trigger!r}, rearm={self.balance_rearm!r}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every!r}"
            )
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError(
                "conflicting knobs: checkpoint_every > 0 needs a "
                "checkpoint_dir to write into; pass checkpoint_dir=... or "
                "checkpoint_every=0"
            )
        if self.backend is not None:
            from repro.backend import BACKEND_NAMES, ExecutionBackend
            from repro.backend.base import _parse_spec

            if isinstance(self.backend, str):
                _parse_spec(self.backend)  # raises BackendError on bad specs
            elif not isinstance(self.backend, ExecutionBackend):
                raise ValueError(
                    f"backend must be None, one of {BACKEND_NAMES} (optionally "
                    f"'process:N'), or an ExecutionBackend instance, got "
                    f"{type(self.backend).__name__}"
                )
        if self.collective_algos is not None:
            from repro.simmpi.algos import parse_algos

            parse_algos(self.collective_algos)  # raises ValueError on bad specs
        if self.load_balance != "off" and not tuple(self.balance_phases):
            raise ValueError(
                f"conflicting knobs: load_balance={self.load_balance!r} needs "
                "at least one entry in balance_phases (the monitor would "
                "observe zero work and never fire); pass load_balance='off' "
                "or keep the default ('near', 'far')"
            )


@dataclasses.dataclass
class StepRecord:
    """Per-step timing and diagnostics."""

    step: int
    #: per-phase virtual-time/message/byte deltas of this step
    phases: Dict[str, PhaseStats]
    #: total virtual-time delta of the step
    total_time: float
    #: global maximum particle displacement during the position update
    max_move: float
    #: whether the solver returned the changed order (method B succeeded)
    changed: bool
    #: solver strategy ("partition", "merge", "grid+alltoall", ...)
    strategy: str
    #: redistribution method in effect ("A", "B", "B+move")
    method: str = ""
    energy: Optional[float] = None
    #: load-imbalance factor λ = max/mean per-rank near-field work of this
    #: step (``None`` unless a dynamic balance monitor is attached)
    lambda_factor: Optional[float] = None

    def phase_time(self, *labels: str) -> float:
        """Summed virtual time of the given phase labels in this step
        (missing labels count as zero, like :meth:`PhaseTable.time`)."""
        return sum(self.phases[l].time for l in labels if l in self.phases)


class Simulation:
    """A particle dynamics simulation coupled to a long-range solver."""

    def __init__(
        self,
        machine: Machine,
        system: ParticleSystem,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.machine = machine
        self.system = system
        self.config = config or SimulationConfig()
        cfg = self.config
        if cfg.perturbation is not None:
            machine.perturb(cfg.perturbation)
        if cfg.backend is not None:
            from repro.backend import resolve_backend

            machine.attach_backend(resolve_backend(cfg.backend))
        if cfg.collective_algos is not None:
            machine.set_collective_algos(cfg.collective_algos)

        self.particles, self.vel, owner = distribute(
            system,
            machine.nprocs,
            cfg.distribution,
            seed=cfg.seed,
            capacity_factor=cfg.capacity_factor,
        )
        self.ids: List[np.ndarray] = [
            np.flatnonzero(owner == r).astype(np.int64) for r in range(machine.nprocs)
        ]
        self.acc: List[np.ndarray] = [np.zeros_like(p) for p in self.particles.pos]

        self.fcs: FCS = fcs_init(cfg.solver, machine, **cfg.solver_kwargs)
        self.fcs.set_common(box=system.box, offset=system.offset, periodic=True)
        #: the redistribution method in effect this step ("A" or "B"/"B+move");
        #: fixed unless method="adaptive"
        self.active_method = "B" if cfg.method == "adaptive" else cfg.method
        self._adaptive_trial: Optional[str] = None
        self._method_costs: Dict[str, float] = {}
        self._switch_transient = False
        if self.active_method in ("B", "B+move"):
            self.fcs.set_resort(True)
        #: the dynamic-mode :class:`~repro.core.balance.ImbalanceMonitor`
        #: (``None`` unless ``load_balance="dynamic"`` on a solver that can
        #: repartition ownership)
        self.balance_monitor: Optional[ImbalanceMonitor] = None
        if cfg.load_balance != "off":
            self.fcs.solver.set_load_balance(cfg.load_balance)
            if cfg.load_balance == "dynamic" and self.fcs.solver.supports_rebalance:
                self.balance_monitor = ImbalanceMonitor(
                    trigger=cfg.balance_trigger, rearm=cfg.balance_rearm
                )
        self.records: List[StepRecord] = []
        self.step_index = 0
        self._initialized = False
        self._last_max_move: Optional[float] = None
        self._rng = np.random.default_rng(cfg.seed + 7919)
        if cfg.dynamics == "brownian":
            # initialize random walk directions — unless the system already
            # carries velocities (e.g. restarted from a checkpoint)
            has_velocities = any(v.size and np.abs(v).max() > 0 for v in self.vel)
            if not has_velocities:
                speed = cfg.brownian_step / cfg.dt
                self.vel = [
                    self._random_directions(v.shape[0]) * speed for v in self.vel
                ]

    # -- setup (Fig. 3, lines 2-6) ------------------------------------------------

    def initialize(self) -> StepRecord:
        """Tune the solver and compute the initial interactions/accelerations."""
        if self._initialized:
            raise RuntimeError("simulation already initialized")
        cfg = self.config
        snap = self.machine.trace.snapshot()
        wsnap = self.machine.trace.rank_work_snapshot()
        t0 = self.machine.elapsed()
        with machine_span(
            self.machine, "sim.initialize", op="sim.initialize",
            solver=cfg.solver, method=self.active_method,
        ):
            self.fcs.tune(self.particles, cfg.accuracy)
            report = self.fcs.run(self.particles)
            if report.changed:
                self._resort_application_data(report)
            lam = self._observe_balance(wsnap, step=0)
            self.acc = accelerations(
                self.particles.q, self.particles.field, cfg.mass
            )
        record = StepRecord(
            step=0,
            phases=self.machine.trace.delta_since(snap),
            total_time=self.machine.elapsed() - t0,
            max_move=0.0,
            changed=report.changed,
            strategy=report.strategy,
            method=self.active_method,
            energy=self._energy() if cfg.track_energy else None,
            lambda_factor=lam,
        )
        self.records.append(record)
        self._initialized = True
        return record

    # -- one loop iteration (Fig. 3, lines 9-12) --------------------------------------

    def step(self) -> StepRecord:
        """Advance the simulation by one time step."""
        if not self._initialized:
            raise RuntimeError("call initialize() before step()")
        cfg = self.config
        snap = self.machine.trace.snapshot()
        wsnap = self.machine.trace.rank_work_snapshot()
        t0 = self.machine.elapsed()

        if cfg.method == "adaptive":
            self._adapt()

        with machine_span(
            self.machine, "sim.step", op="sim.step",
            step=self.step_index + 1, method=self.active_method,
        ):
            new_pos, max_move = position_update(
                self.machine,
                self.particles.pos,
                self.vel,
                self.acc,
                cfg.dt,
                box=self.system.box,
                offset=self.system.offset,
            )
            self.particles.pos = new_pos
            self._last_max_move = max_move

            if self.active_method == "B+move":
                self.fcs.set_max_particle_move(max_move)
            report = self.fcs.run(self.particles)
            if report.changed:
                self._resort_application_data(report)
            lam = self._observe_balance(wsnap, step=self.step_index + 1)

            if cfg.dynamics == "brownian":
                # persistent random-walk surrogate: rotate directions
                # slightly, keep the per-step displacement fixed (acc stays
                # zero)
                speed = cfg.brownian_step / cfg.dt
                self.vel = [
                    self._rotate_directions(v, speed) for v in self.vel
                ]
                acc_new = [np.zeros_like(a) for a in self.acc]
                self.machine.compute(
                    np.asarray([1e-8 * v.shape[0] for v in self.vel]),
                    phase="integrate",
                )
            else:
                acc_new = accelerations(
                    self.particles.q, self.particles.field, cfg.mass
                )
                self.vel = velocity_update(
                    self.machine, self.vel, self.acc, acc_new, cfg.dt
                )
            self.acc = acc_new

        self.step_index += 1
        record = StepRecord(
            step=self.step_index,
            phases=self.machine.trace.delta_since(snap),
            total_time=self.machine.elapsed() - t0,
            max_move=max_move,
            changed=report.changed,
            strategy=report.strategy,
            method=self.active_method,
            energy=self._energy() if cfg.track_energy else None,
            lambda_factor=lam,
        )
        self.records.append(record)
        return record

    def run(self, steps: int) -> List[StepRecord]:
        """Initialize (if needed) and simulate ``steps`` time steps.

        With ``config.checkpoint_every > 0`` a restartable checkpoint is
        written to ``config.checkpoint_dir`` after initialization and after
        every N-th step — see :mod:`repro.ckpt`.
        """
        if not self._initialized:
            self.initialize()
            self._maybe_checkpoint()
        for _ in range(steps):
            self.step()
            self._maybe_checkpoint()
        return self.records

    # -- checkpointing (repro.ckpt) ---------------------------------------------------

    def save_checkpoint(self, path: str) -> int:
        """Write a restartable :mod:`repro.ckpt` checkpoint; returns bytes
        written.  Pure observation — charges no machine cost."""
        from repro.ckpt import save_checkpoint

        return save_checkpoint(self, path)

    def _maybe_checkpoint(self) -> None:
        cfg = self.config
        if cfg.checkpoint_every <= 0:
            return
        if self.step_index % cfg.checkpoint_every != 0:
            return
        import os

        self.save_checkpoint(
            os.path.join(
                cfg.checkpoint_dir, f"step-{self.step_index:06d}.ckpt.ndjson"
            )
        )

    # -- adaptive method selection (extension beyond the paper) -----------------------

    def _adapt(self) -> None:
        """Online A-vs-B selection (an extension beyond the paper).

        The controller measures each step's redistribution cost from the
        phase trace and

        * switches eagerly when the active method's cost drifts above the
          alternative's last known cost (method A's cost grows as particles
          drift away from the frozen application layout — Fig. 8 — while
          method B's stays flat),
        * re-trials the inactive method every ``adapt_every`` steps so its
          cost estimate never goes stale,
        * discards the first step after any switch from the bookkeeping:
          a method switch triggers a one-off layout-refresh redistribution
          that does not reflect the method's steady-state cost.

        A useful emergent behaviour: right after a B step the application
        holds the solver layout, making method A temporarily almost free —
        the controller then runs A until drift makes it lose again, i.e. it
        implements "method A with periodic layout refreshes" automatically.
        """
        last = self.records[-1] if self.records else None
        if last is not None and not self._switch_transient:
            redist = (
                last.phase_time("sort")
                + last.phase_time("restore")
                + last.phase_time("resort")
                + last.phase_time("resort_index")
                + last.phase_time("resort_plan")
            )
            method_of_last = self._adaptive_trial or self.active_method
            self._method_costs[method_of_last] = redist
        measured = not self._switch_transient
        self._switch_transient = False

        if self._adaptive_trial is not None:
            if not measured:
                # the trial's first step was the layout-refresh transient;
                # keep trialing one more step to measure the steady cost
                return
            # the trial measurement is in: pick the winner
            trial = self._adaptive_trial
            self._adaptive_trial = None
            other = "A" if trial != "A" else "B"
            if self._method_costs.get(trial, np.inf) >= self._method_costs.get(
                other, np.inf
            ):
                self._set_active(other)
            return
        mine = self._method_costs.get(self.active_method, np.inf)
        other_method = "A" if self.active_method != "A" else "B"
        theirs = self._method_costs.get(other_method, np.inf)
        if np.isfinite(theirs) and mine > 1.5 * theirs:
            self._set_active(other_method)
        elif self.step_index > 0 and self.step_index % self.config.adapt_every == 0:
            # start a trial of the other method (one measured step; switches
            # into B get an extra unmeasured layout-refresh step first)
            self._adaptive_trial = "A" if self.active_method != "A" else "B"
            self._set_active(self._adaptive_trial)

    _B_FAMILY = ("B", "B+move")

    def _set_active(self, method: str) -> None:
        # switching INTO method B triggers a one-off full redistribution to
        # (re-)adopt the solver layout; that transient is not the method's
        # steady-state cost.  Switching to A just stops resorting.
        if method != self.active_method and method in self._B_FAMILY:
            self._switch_transient = True
        self.active_method = method
        self.fcs.set_resort(method in self._B_FAMILY)

    # -- dynamic load balancing --------------------------------------------------------

    def _observe_balance(
        self, rank_work_snapshot: Dict[str, np.ndarray], step: int
    ) -> Optional[float]:
        """Feed this step's per-rank nominal work to the imbalance monitor.

        On a trigger the solver is asked to rebalance on its *next* run, and
        the adaptive-method bookkeeping treats that next step as a layout
        transient (its one-off balance exchange is not any method's
        steady-state redistribution cost).  The observed work is the
        pre-perturbation nominal of :meth:`Trace.rank_work_delta
        <repro.simmpi.tracing.Trace.rank_work_delta>`, so the decision is
        schedule-independent.
        """
        if self.balance_monitor is None:
            return None
        delta = self.machine.trace.rank_work_delta(rank_work_snapshot)
        work = np.zeros(self.machine.nprocs, dtype=np.float64)
        for phase in self.config.balance_phases:
            contribution = delta.get(phase)
            if contribution is not None:
                work += contribution
        fired = self.balance_monitor.observe(work, step)
        lam = self.balance_monitor.history[-1]
        obs = self.machine.obs
        if obs is not None:
            obs.metrics.gauge("balance.lambda").set(lam)
            if fired:
                obs.metrics.counter("balance.triggers").inc()
                obs.mark("balance.trigger", op="balance", step=step, lam=lam)
        if fired:
            self.fcs.solver.request_rebalance()
            self._switch_transient = True
        return lam

    # -- brownian surrogate dynamics ---------------------------------------------------

    def _random_directions(self, n: int) -> np.ndarray:
        v = self._rng.normal(size=(n, 3))
        norm = np.linalg.norm(v, axis=1, keepdims=True)
        norm[norm == 0] = 1.0
        return v / norm

    def _rotate_directions(self, vel: np.ndarray, speed: float) -> np.ndarray:
        if vel.shape[0] == 0:
            return vel
        jitter = 0.3 * self._rng.normal(size=vel.shape)
        v = vel / max(speed, 1e-300) + jitter
        norm = np.linalg.norm(v, axis=1, keepdims=True)
        norm[norm == 0] = 1.0
        return v / norm * speed

    # -- method B plumbing ------------------------------------------------------------

    def _resort_application_data(self, report) -> None:
        """Adapt velocities, accelerations and identities to the changed
        particle order and distribution.

        The plan compiled from the run's resort indices is cached on the
        handle, so across unchanged time steps only the data exchanges
        remain.  With ``fuse_resort`` (the default) the six float columns
        and the ids travel in ONE fused exchange; with it disabled each
        column gets its own exchange (the legacy per-array traffic pattern,
        kept for A/B benchmarking)."""
        plan = self.fcs.resort_plan()
        if self.config.fuse_resort:
            self.vel, self.acc, self.ids = self.fcs.resort(
                (self.vel, self.acc, self.ids), plan=plan
            )
        else:
            self.vel = self.fcs.resort(self.vel, plan=plan)
            self.acc = self.fcs.resort(self.acc, plan=plan)
            self.ids = self.fcs.resort(self.ids, plan=plan)

    # -- observables -----------------------------------------------------------------

    def _energy(self) -> float:
        return kinetic_energy(self.vel, self.config.mass) + potential_energy(
            self.particles.q, self.particles.pot
        )

    def gather_state(self) -> Dict[str, np.ndarray]:
        """Global (id-ordered) positions, velocities, charges — an
        out-of-band observer view for tests and examples."""
        ids = np.concatenate(self.ids)
        order = np.argsort(ids)
        return {
            "ids": ids[order],
            "pos": np.concatenate(self.particles.pos)[order],
            "vel": np.concatenate(self.vel)[order],
            "q": np.concatenate(self.particles.q)[order],
            "pot": np.concatenate(self.particles.pot)[order],
        }
