"""Second-order leapfrog integration (Eqs. (1)-(2) of the paper).

``x_{i+1} = x_i + v_i dt + a_i dt^2 / 2``
``v_{i+1} = v_i + (a_i + a_{i+1}) dt / 2``

Accelerations come from the solver's field values: ``a = q E / m`` (unit
masses throughout).  The position update also measures each rank's maximum
particle displacement — the quantity the application feeds back to the
solver through ``fcs_set_max_particle_move`` (Sect. III-B: "an application
can determine the maximum movement of the particles ... during the update
of the particle positions").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.simmpi.collectives import allreduce
from repro.simmpi.machine import Machine

__all__ = ["accelerations", "position_update", "velocity_update"]


def accelerations(
    q: Sequence[np.ndarray],
    field: Sequence[np.ndarray],
    mass: float = 1.0,
) -> List[np.ndarray]:
    """Per-rank accelerations ``a = q E / m`` from solver field values."""
    return [(qi[:, None] * fi) / mass for qi, fi in zip(q, field)]


def position_update(
    machine: Machine,
    pos: Sequence[np.ndarray],
    vel: Sequence[np.ndarray],
    acc: Sequence[np.ndarray],
    dt: float,
    box: Optional[np.ndarray] = None,
    offset: Optional[np.ndarray] = None,
    phase: str = "integrate",
) -> Tuple[List[np.ndarray], float]:
    """Leapfrog position update; returns new positions and the *global*
    maximum displacement (one allreduce, charged to the integrator phase).

    Positions wrap into the periodic box when ``box`` is given.
    """
    new_pos: List[np.ndarray] = []
    local_max = np.zeros(machine.nprocs)
    cost = np.zeros(machine.nprocs)
    for r, (x, v, a) in enumerate(zip(pos, vel, acc)):
        step = v * dt + 0.5 * a * dt * dt
        xn = x + step
        if box is not None:
            off = offset if offset is not None else np.zeros(3)
            xn = off + np.mod(xn - off, box)
        new_pos.append(xn)
        if x.shape[0]:
            local_max[r] = float(np.sqrt((step * step).sum(axis=1).max()))
        cost[r] = kernels.INTEGRATION_STEP * x.shape[0]
    machine.compute(cost, phase)
    max_move = float(allreduce(machine, local_max, op="max", phase=phase))
    return new_pos, max_move


def velocity_update(
    machine: Machine,
    vel: Sequence[np.ndarray],
    acc_old: Sequence[np.ndarray],
    acc_new: Sequence[np.ndarray],
    dt: float,
    phase: str = "integrate",
) -> List[np.ndarray]:
    """Leapfrog velocity update ``v += (a_i + a_{i+1}) dt / 2``."""
    out: List[np.ndarray] = []
    cost = np.zeros(machine.nprocs)
    for r, (v, a0, a1) in enumerate(zip(vel, acc_old, acc_new)):
        out.append(v + 0.5 * (a0 + a1) * dt)
        cost[r] = kernels.INTEGRATION_STEP * v.shape[0]
    machine.compute(cost, phase)
    return out
