"""Velocity initialisation and temperature control.

The paper's benchmark starts from ``v0 = 0`` (the melting crystal heats up
from its potential energy).  For general MD use the library also provides
the standard tools a downstream user expects:

* :func:`maxwell_boltzmann` — velocities drawn from the Maxwell-Boltzmann
  distribution at a target temperature, with the center-of-mass drift
  removed (so total momentum starts at zero);
* :func:`temperature` — instantaneous kinetic temperature
  ``T = 2 E_kin / (3 N k_B)`` (k_B = 1 in our reduced units);
* :class:`BerendsenThermostat` — weak-coupling velocity rescaling toward a
  target temperature.

All functions operate on the per-rank velocity lists of the distributed
application and charge their (tiny) collective costs to the machine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.simmpi.collectives import allreduce
from repro.simmpi.machine import Machine

__all__ = ["maxwell_boltzmann", "temperature", "BerendsenThermostat"]


def maxwell_boltzmann(
    counts: Sequence[int],
    target_temperature: float,
    mass: float = 1.0,
    seed: int = 0,
) -> List[np.ndarray]:
    """Per-rank velocities at the given temperature, zero total momentum.

    Uses one global RNG stream so the result is independent of the
    distribution of particles among ranks.
    """
    if target_temperature < 0:
        raise ValueError(f"temperature must be non-negative, got {target_temperature}")
    total = int(sum(counts))
    rng = np.random.default_rng(seed)
    sigma = np.sqrt(target_temperature / mass)
    vel = rng.normal(0.0, sigma, (total, 3)) if total else np.zeros((0, 3))
    if total:
        vel -= vel.mean(axis=0)  # remove center-of-mass drift
        # rescale to hit the target exactly after drift removal
        t_now = temperature_global(vel, mass)
        if t_now > 0 and target_temperature > 0:
            vel *= np.sqrt(target_temperature / t_now)
        elif target_temperature == 0:
            vel[:] = 0.0
    out: List[np.ndarray] = []
    offset = 0
    for c in counts:
        out.append(vel[offset:offset + int(c)].copy())
        offset += int(c)
    return out


def temperature_global(vel: np.ndarray, mass: float = 1.0) -> float:
    """Kinetic temperature of a single velocity array (k_B = 1)."""
    n = vel.shape[0]
    if n == 0:
        return 0.0
    ekin = 0.5 * mass * float((vel * vel).sum())
    return 2.0 * ekin / (3.0 * n)


def temperature(
    machine: Machine,
    vel: Sequence[np.ndarray],
    mass: float = 1.0,
    phase: str = "integrate",
) -> float:
    """Global kinetic temperature of distributed velocities (one allreduce)."""
    local = np.zeros((machine.nprocs, 2))
    for r, v in enumerate(vel):
        local[r, 0] = 0.5 * mass * float((v * v).sum())
        local[r, 1] = v.shape[0]
    totals = np.asarray(allreduce(machine, list(local), op="sum", phase=phase))
    if totals[1] == 0:
        return 0.0
    return 2.0 * float(totals[0]) / (3.0 * float(totals[1]))


class BerendsenThermostat:
    """Weak-coupling thermostat: rescale velocities toward ``target``.

    ``lambda = sqrt(1 + dt/tau (T_target/T - 1))`` per step; ``tau`` is the
    coupling time (larger = gentler).  Costs one allreduce per application.
    """

    def __init__(self, target: float, tau: float, dt: float) -> None:
        if target < 0 or tau <= 0 or dt <= 0:
            raise ValueError("target >= 0, tau > 0 and dt > 0 required")
        self.target = float(target)
        self.tau = float(tau)
        self.dt = float(dt)

    def apply(
        self,
        machine: Machine,
        vel: Sequence[np.ndarray],
        mass: float = 1.0,
        phase: str = "integrate",
    ) -> List[np.ndarray]:
        """Return rescaled velocities (the inputs are not modified)."""
        t_now = temperature(machine, vel, mass, phase)
        if t_now <= 0.0:
            return [v.copy() for v in vel]
        factor = np.sqrt(max(1.0 + self.dt / self.tau * (self.target / t_now - 1.0), 0.0))
        return [v * factor for v in vel]
