"""Particle dynamics simulation application (Sect. II-D of the paper).

The example application couples the ScaFaCoS-like library interface with a
second-order leapfrog integrator.  Per time step it updates positions,
executes the solver (``fcs_run``), derives accelerations from the
calculated field values, and updates velocities — Fig. 3's pseudocode.
Method A keeps the application's own particle order and distribution;
method B adopts the solver-specific one and resorts the velocities,
accelerations and ids through one fused plan-based ``fcs.resort`` exchange
after each run.

* :mod:`repro.md.systems` — particle system generation (the melting-silica
  analogue) with scaled sizes,
* :mod:`repro.md.distributions` — the three initial distributions compared
  in the paper (single process / uniformly random / Cartesian process grid),
* :mod:`repro.md.integrator` — the leapfrog scheme of Eqs. (1)-(2),
* :mod:`repro.md.simulation` — the full coupled simulation loop with
  per-step phase timing,
* :mod:`repro.md.observables` — energies, momentum, displacement tracking.
"""

from repro.md.simulation import Simulation, SimulationConfig, StepRecord
from repro.md.systems import silica_melt_system
from repro.md.distributions import distribute

__all__ = [
    "Simulation",
    "SimulationConfig",
    "StepRecord",
    "distribute",
    "silica_melt_system",
]
