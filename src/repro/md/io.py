"""Trajectory and checkpoint I/O.

Adoption-grade conveniences for the coupled simulation:

* :func:`write_xyz` / :func:`read_xyz` — extended-XYZ snapshots (one
  species letter per charge sign, positions, optional velocities), the
  format every MD visualizer understands;
* :func:`save_checkpoint` / :func:`load_checkpoint` — lossless ``.npz``
  checkpoints of a running :class:`~repro.md.simulation.Simulation`
  (id-ordered global state) that can be restarted on a machine with a
  *different* process count — the redistribution machinery makes the
  layout a free choice.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

__all__ = ["write_xyz", "read_xyz", "save_checkpoint", "load_checkpoint"]


def write_xyz(
    path: str,
    pos: np.ndarray,
    q: np.ndarray,
    vel: Optional[np.ndarray] = None,
    comment: str = "",
    append: bool = False,
) -> None:
    """Write one (extended) XYZ frame; cation = 'Na', anion = 'Cl'."""
    n = pos.shape[0]
    if pos.shape != (n, 3) or q.shape != (n,):
        raise ValueError("pos must be (n, 3) and q (n,)")
    if vel is not None and vel.shape != (n, 3):
        raise ValueError("vel must be (n, 3)")
    mode = "a" if append else "w"
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, mode) as fh:
        fh.write(f"{n}\n{comment}\n")
        for i in range(n):
            species = "Na" if q[i] > 0 else "Cl"
            line = f"{species} {pos[i, 0]:.10f} {pos[i, 1]:.10f} {pos[i, 2]:.10f}"
            if vel is not None:
                line += f" {vel[i, 0]:.10f} {vel[i, 1]:.10f} {vel[i, 2]:.10f}"
            fh.write(line + "\n")


def read_xyz(path: str, frame: int = 0):
    """Read one frame; returns ``(pos, q, vel_or_None, comment)``."""
    with open(path) as fh:
        lines = fh.read().splitlines()
    idx = 0
    for _ in range(frame + 1):
        if idx >= len(lines):
            raise ValueError(f"frame {frame} not present in {path}")
        n = int(lines[idx].strip())
        start = idx
        idx += 2 + n
    comment = lines[start + 1]
    rows = [lines[start + 2 + i].split() for i in range(n)]
    q = np.asarray([1.0 if r[0] == "Na" else -1.0 for r in rows])
    pos = np.asarray([[float(v) for v in r[1:4]] for r in rows])
    vel = None
    if rows and len(rows[0]) >= 7:
        vel = np.asarray([[float(v) for v in r[4:7]] for r in rows])
    return pos, q, vel, comment


def save_checkpoint(path: str, sim) -> None:
    """Save a simulation's id-ordered global state as ``.npz``."""
    state = sim.gather_state()
    vel = state["vel"]
    acc_by_id = np.concatenate(sim.acc)[np.argsort(np.concatenate(sim.ids))]
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    np.savez_compressed(
        path,
        pos=state["pos"],
        vel=vel,
        acc=acc_by_id,
        q=state["q"],
        box=sim.system.box,
        offset=sim.system.offset,
        step_index=sim.step_index,
        dt=sim.config.dt,
    )


def load_checkpoint(path: str) -> Dict[str, np.ndarray]:
    """Load a checkpoint into a plain dict (see :func:`resume_simulation`)."""
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


def resume_simulation(
    path: str,
    machine,
    config=None,
):
    """Reconstruct a :class:`Simulation` from a checkpoint.

    The process count of ``machine`` may differ from the saving run's — the
    state is global and gets redistributed on the first solver execution.
    """
    from repro.md.simulation import Simulation, SimulationConfig
    from repro.md.systems import ParticleSystem

    data = load_checkpoint(path)
    system = ParticleSystem(
        pos=data["pos"],
        q=data["q"],
        vel=data["vel"],
        box=data["box"],
        offset=data["offset"],
    )
    config = config or SimulationConfig(dt=float(data["dt"]))
    sim = Simulation(machine, system, config)
    # re-seed the application-side arrays from the checkpoint (distribute()
    # already split pos/q/vel consistently via the system object)
    sim.step_index = int(data["step_index"])
    return sim
