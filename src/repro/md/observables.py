"""Physical observables of the coupled simulation.

Used by the examples and tests to check that the numerics behave like a
particle dynamics simulation should: the total energy (kinetic +
electrostatic) is approximately conserved, the total momentum stays zero,
and the cumulative drift of particles away from their initial positions —
the quantity behind Fig. 8's growing method-A redistribution cost — is
measurable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "kinetic_energy",
    "potential_energy",
    "total_momentum",
    "max_drift",
    "mean_drift",
]


def kinetic_energy(vel: Sequence[np.ndarray], mass: float = 1.0) -> float:
    """``sum 0.5 m v^2`` over all ranks."""
    return float(sum(0.5 * mass * (v * v).sum() for v in vel))


def potential_energy(q: Sequence[np.ndarray], pot: Sequence[np.ndarray]) -> float:
    """Electrostatic energy ``0.5 sum q_i phi_i`` over all ranks."""
    return float(sum(0.5 * (qi * pi).sum() for qi, pi in zip(q, pot)))


def total_momentum(vel: Sequence[np.ndarray], mass: float = 1.0) -> np.ndarray:
    """Vector total momentum over all ranks."""
    out = np.zeros(3)
    for v in vel:
        if v.shape[0]:
            out += mass * v.sum(axis=0)
    return out


def _displacements(
    initial: np.ndarray, current: np.ndarray, box: Optional[np.ndarray]
) -> np.ndarray:
    d = current - initial
    if box is not None:
        d -= np.round(d / box) * box
    return np.sqrt((d * d).sum(axis=1))


def max_drift(
    initial: np.ndarray, current: np.ndarray, box: Optional[np.ndarray] = None
) -> float:
    """Maximum displacement of any particle from its initial position
    (minimum-image if ``box`` given; both arrays in the same order)."""
    if initial.shape[0] == 0:
        return 0.0
    return float(_displacements(initial, current, box).max())


def mean_drift(
    initial: np.ndarray, current: np.ndarray, box: Optional[np.ndarray] = None
) -> float:
    """Mean displacement of the particles from their initial positions."""
    if initial.shape[0] == 0:
        return 0.0
    return float(_displacements(initial, current, box).mean())
