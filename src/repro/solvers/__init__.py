"""Long-range interaction solvers.

* :mod:`repro.solvers.fmm` — tree-based Fast Multipole Method with Z-order
  curve domain decomposition (parallel sorting of Morton box numbers).
* :mod:`repro.solvers.p2nfft` — grid-based Ewald-splitting particle-mesh
  solver (P2NFFT-style) with Cartesian process-grid domain decomposition,
  ghost particles and a linked-cell near field.
* :mod:`repro.solvers.direct` — O(n^2) direct summation (open boundaries or
  minimum image), the small-system accuracy oracle.
* :mod:`repro.solvers.ewald_ref` — classical Ewald summation, the exact
  periodic reference.

Solvers are obtained through the library interface
(:func:`repro.core.fcs_init`), mirroring how ScaFaCoS selects solvers by a
string parameter (``"fmm"`` / ``"p2nfft"`` / ``"direct"``).
"""

from repro.solvers.base import RunReport, Solver

__all__ = ["RunReport", "Solver"]
