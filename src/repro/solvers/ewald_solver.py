"""Parallel classical Ewald solver (the ScaFaCoS "ewald" method).

The O(N^1.5) baseline between the direct sum and the fast solvers:

* **real space** — exactly the P2NFFT's machinery: Cartesian process-grid
  decomposition, ghost particles within the cutoff, linked-cell
  ``erfc(alpha r)/r`` sums (it reuses those modules verbatim);
* **reciprocal space** — the k-vector list is split across the ranks; each
  rank computes the structure-factor contribution of its *local* particles
  for its *k-slice*... which requires one allreduce of the slice's
  structure factors (the classical parallel Ewald pattern), then evaluates
  its local particles against the full spectrum.

Because the real-space part uses the same redistribution (including method
B's resort indices and the neighborhood optimization), this solver is a
drop-in third method for every experiment in the repo — and a useful
accuracy cross-check at mid-size systems.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.fine_grained import fine_grained_redistribute
from repro.core.movement import p2nfft_prefers_neighborhood
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import initial_numbering, invert_indices
from repro.core.restore import restore_results
from repro.simmpi.cart import CartGrid
from repro.simmpi.collectives import allreduce
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.solver import ghost_distribution
from repro.solvers.p2nfft.tuning import suggest_cutoff

__all__ = ["EwaldSolver"]

#: nominal cost of one particle against one k-vector (sin+cos+mults)
_KVEC_PARTICLE = 1.2e-8


class EwaldSolver(Solver):
    """Classical Ewald summation on the process grid."""

    name = "ewald"

    def __init__(
        self,
        machine: Machine,
        cutoff: Optional[float] = None,
        alpha: Optional[float] = None,
        kmax: Optional[int] = None,
        compute: str = "full",
    ) -> None:
        super().__init__(machine)
        if compute not in ("full", "skip"):
            raise ValueError(f"compute must be 'full' or 'skip', got {compute!r}")
        self._cutoff_override = cutoff
        self._alpha_override = alpha
        self._kmax_override = kmax
        self.compute_mode = compute
        self.rc: Optional[float] = None
        self.alpha: Optional[float] = None
        self.kmax: Optional[int] = None
        self.near: Optional[LinkedCellNearField] = None
        self.grid: Optional[CartGrid] = None
        self._kvecs: Optional[np.ndarray] = None
        self._green: Optional[np.ndarray] = None

    def set_common(self, *, box, offset=(0.0, 0.0, 0.0), periodic: bool = True) -> None:
        if not periodic:
            raise ValueError("the Ewald solver supports periodic systems only")
        super().set_common(box=box, offset=offset, periodic=periodic)

    # -- tuning ------------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Choose alpha/cutoff/kmax and build the k-vector list."""
        self.require_common()
        n = particles.total()
        self.rc = self._cutoff_override or suggest_cutoff(self.box, n)
        alpha = math.sqrt(max(-math.log(accuracy), 1.0)) / self.rc
        if self._alpha_override is not None:
            alpha = float(self._alpha_override)
        self.alpha = alpha
        if self._kmax_override is not None:
            self.kmax = int(self._kmax_override)
        else:
            m = alpha * float(self.box.max()) / math.pi * math.sqrt(
                max(-math.log(accuracy), 1.0)
            )
            self.kmax = max(2, int(math.ceil(m)))
        if self.compute_mode == "full":
            self.near = LinkedCellNearField(self.box, self.offset, self.rc, alpha)
            self._build_kvectors()
        self.grid = CartGrid(self.machine.nprocs, self.box, self.offset, periodic=True)
        self.machine.barrier(phase="tune")
        self._tuned = True

    def _build_kvectors(self) -> None:
        kmax = self.kmax
        ms = np.arange(-kmax, kmax + 1)
        mx, my, mz = np.meshgrid(ms, ms, ms, indexing="ij")
        mv = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1)
        mv = mv[np.any(mv != 0, axis=1)]
        kv = 2.0 * math.pi * mv / self.box[None, :]
        k2 = (kv * kv).sum(axis=1)
        volume = float(np.prod(self.box))
        green = 4.0 * math.pi / volume * np.exp(-k2 / (4.0 * self.alpha ** 2)) / k2
        self._kvecs = kv
        self._green = green

    # -- run -----------------------------------------------------------------------

    def run(
        self,
        particles: ParticleSet,
        *,
        resort: bool = False,
        max_move: Optional[float] = None,
    ) -> RunReport:
        self.require_common()
        if not self._tuned:
            raise RuntimeError("fcs_tune must run before fcs_run")
        machine = self.machine
        P = machine.nprocs
        old_counts = particles.counts()

        neighborhood = (
            max_move is not None and p2nfft_prefers_neighborhood(self.grid, max_move)
        )
        comm = "neighborhood" if neighborhood else "alltoall"
        strategy = f"grid+{comm}"

        # --- forward redistribution with ghosts (same as P2NFFT) -------------
        numbering = initial_numbering(old_counts)
        blocks: List[ColumnBlock] = []
        cost = np.zeros(P)
        for r in range(P):
            blocks.append(
                ColumnBlock(
                    pos=particles.pos[r].copy(),
                    q=particles.q[r].copy(),
                    index=numbering[r],
                )
            )
            cost[r] = kernels.KEY_GENERATION * old_counts[r]
        machine.compute(cost, phase="keygen")

        all_pos = np.concatenate([b["pos"] for b in blocks])
        offsets = np.concatenate(([0], np.cumsum(old_counts)))
        g_elems, g_targets = ghost_distribution(self.grid, all_pos, self.rc)
        order = np.argsort(g_elems, kind="stable")
        g_elems, g_targets = g_elems[order], g_targets[order]
        split_at = np.searchsorted(g_elems, offsets)
        pairs = [
            (g_elems[split_at[r]:split_at[r + 1]] - offsets[r], g_targets[split_at[r]:split_at[r + 1]])
            for r in range(P)
        ]
        received = fine_grained_redistribute(
            machine, blocks, lambda r, b: pairs[r], phase="sort", comm=comm
        )

        owned: List[ColumnBlock] = []
        local_all: List[ColumnBlock] = []
        for r in range(P):
            block = received[r]
            if block.n:
                own_mask = self.grid.rank_of_positions(block["pos"]) == r
                owned.append(block.take(np.flatnonzero(own_mask)))
            else:
                owned.append(ColumnBlock.empty_like(block, 0))
            local_all.append(block)
        new_counts = np.asarray([b.n for b in owned], dtype=np.int64)

        # --- real space ---------------------------------------------------------
        pots, fields = self._real_space(owned, local_all, new_counts)

        # --- reciprocal space ------------------------------------------------------
        self._k_space(owned, pots, fields, new_counts)

        # --- return path ------------------------------------------------------------
        if resort and particles.fits(new_counts):
            for r in range(P):
                particles.replace(r, owned[r]["pos"], owned[r]["q"], pots[r], fields[r])
            resort_indices = invert_indices(
                machine,
                [b["index"] for b in owned],
                [int(c) for c in old_counts],
                phase="resort_index",
                comm=comm,
            )
            return RunReport(
                changed=True,
                resort_indices=resort_indices,
                old_counts=old_counts,
                new_counts=new_counts,
                strategy=strategy,
                comm=comm,
            )
        restore_results(
            machine,
            [b["index"] for b in owned],
            pots,
            fields,
            particles,
            [int(c) for c in old_counts],
            phase="restore",
        )
        return RunReport(
            changed=False,
            old_counts=old_counts,
            new_counts=old_counts,
            strategy=strategy,
            comm=comm,
        )

    # -- pieces --------------------------------------------------------------------

    def _real_space(self, owned, local_all, new_counts) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        machine = self.machine
        P = machine.nprocs
        pots: List[np.ndarray] = []
        fields: List[np.ndarray] = []
        near_cost = np.zeros(P)
        density = float(new_counts.sum()) / float(np.prod(self.box))
        pair_density = density * (4.0 / 3.0) * math.pi * self.rc ** 3
        for r in range(P):
            if self.compute_mode == "skip":
                pots.append(np.zeros(owned[r].n))
                fields.append(np.zeros((owned[r].n, 3)))
                near_cost[r] = kernels.ERFC_PAIR * owned[r].n * pair_density
                continue
            pot_n, field_n, npairs = self.near.compute(
                owned[r]["pos"], local_all[r]["pos"], local_all[r]["q"]
            )
            pots.append(pot_n)
            fields.append(field_n)
            near_cost[r] = kernels.ERFC_PAIR * npairs
        machine.compute(near_cost, phase="near")
        return pots, fields

    def _k_space(self, owned, pots, fields, new_counts) -> None:
        """Rank-split k-space sums with one structure-factor allreduce."""
        machine = self.machine
        P = machine.nprocs
        if self.compute_mode == "full":
            kv, green = self._kvecs, self._green
            nk = kv.shape[0]
            # data plane: global structure factor, then local evaluations
            gpos = np.concatenate([b["pos"] for b in owned])
            gq = np.concatenate([b["q"] for b in owned])
            pot_k = np.zeros(gpos.shape[0])
            field_k = np.zeros_like(gpos)
            for start in range(0, nk, 2048):
                kvc = kv[start:start + 2048]
                gc = green[start:start + 2048]
                phase_arg = gpos @ kvc.T
                c, s = np.cos(phase_arg), np.sin(phase_arg)
                sc = gq @ c
                ss = gq @ s
                pot_k += c @ (gc * sc) + s @ (gc * ss)
                field_k += (s * (gc * sc)[None, :] - c * (gc * ss)[None, :]) @ kvc
            pot_k -= 2.0 * self.alpha / math.sqrt(math.pi) * gq
            offsets = np.concatenate(([0], np.cumsum(new_counts)))
            for r in range(P):
                sl = slice(offsets[r], offsets[r + 1])
                pots[r] = pots[r] + pot_k[sl]
                fields[r] = fields[r] + field_k[sl]
            nk_total = nk
        else:
            nk_total = (2 * self.kmax + 1) ** 3 - 1
        # cost plane: each rank computes n_local x (nk/P) phases twice
        # (structure factor + evaluation) and one allreduce of the partial
        # structure factors (2 floats per k-vector)
        per_rank = (
            2.0 * _KVEC_PARTICLE * new_counts.astype(np.float64) * (nk_total / P)
        )
        machine.compute(per_rank, phase="far")
        allreduce(
            machine,
            [np.zeros(2)] * P,  # stand-in; volume charged via tree model below
            op="sum",
            phase="far",
        )
        machine.advance(
            machine.model.tree_collective_time(
                P, 16.0 * nk_total / max(P, 1), machine.topology.diameter()
            ),
            "far",
            messages=2 * max(0, P - 1),
        )
