"""Fourier-space part: CIC charge assignment, FFT solve, interpolation.

Implements the particle-mesh pipeline for the Ewald reciprocal sum on an
``(M, M, M)`` mesh over the periodic box:

1. cloud-in-cell (CIC, order-2) assignment of charges to the mesh,
2. forward FFT, multiplication with the Ewald influence function
   ``G(k) = 4 pi exp(-k^2 / 4 alpha^2) / (V k^2)`` deconvolved by the
   squared CIC window (once for assignment, once for interpolation),
3. ``ik``-differentiation and four inverse FFTs (potential + 3 field
   components),
4. CIC interpolation back to the particle positions,
5. self-energy and (for non-neutral systems) neutralizing-background
   corrections applied by the caller.

The data plane runs the global FFT once; the distributed-memory cost
(slab/pencil transposes) is charged separately by the solver
(:func:`repro.solvers.p2nfft.solver.charge_parallel_fft`).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["MeshSolver", "cic_fractions"]


def cic_fractions(pos: np.ndarray, offset: np.ndarray, h: np.ndarray, M: int):
    """CIC base cell indices and weights for each particle.

    Returns ``(base, frac)`` with ``base`` the lower mesh cell per particle
    (``(n, 3)`` ints, wrapped into ``[0, M)``) and ``frac`` the fractional
    offsets in ``[0, 1)``.
    """
    rel = (pos - offset) / h
    base = np.floor(rel).astype(np.int64)
    frac = rel - base
    base %= M
    return base, frac


class MeshSolver:
    """Reusable FFT mesh for a fixed box / mesh size / splitting parameter."""

    def __init__(
        self,
        M: int,
        box: np.ndarray,
        offset: np.ndarray,
        alpha: float,
    ) -> None:
        if M < 4:
            raise ValueError(f"mesh size must be >= 4, got {M}")
        self.M = int(M)
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        self.alpha = float(alpha)
        self.h = self.box / self.M
        self.volume = float(np.prod(self.box))
        self._build_influence()

    #: alias terms per dimension in the optimal influence function
    _ALIAS = 2

    def _build_influence(self) -> None:
        """Hockney-Eastwood optimal influence function for ``ik``
        differentiation with the CIC window.

        ``G_opt(k) = [sum_m (k . k_m) U^2(k_m) G(k_m)]
                     / [|k|^2 (sum_m U^2(k_m))^2]``

        with the alias wave vectors ``k_m = k + 2 pi m M / L`` (``m`` in
        ``[-ALIAS, ALIAS]^3``), ``U`` the CIC charge-assignment window
        (per-dim ``sinc^2``) and ``G`` the true Ewald Green function.  This
        minimizes the rms force error of the mesh calculation over all
        influence functions [Hockney & Eastwood 1988]; the bare
        ``G / U^2`` deconvolution is an order of magnitude less accurate at
        the same mesh size.
        """
        M = self.M
        n1 = np.fft.fftfreq(M, d=1.0 / M)  # integer mesh wavenumbers
        kx = (2.0 * math.pi * n1 / self.box[0])[:, None, None]
        ky = (2.0 * math.pi * n1 / self.box[1])[None, :, None]
        kz = (2.0 * math.pi * n1 / self.box[2])[None, None, :]
        k2 = kx * kx + ky * ky + kz * kz

        def sinc(x: np.ndarray) -> np.ndarray:
            out = np.ones_like(x)
            nz = x != 0.0
            out[nz] = np.sin(x[nz]) / x[nz]
            return out

        num = np.zeros((M, M, M))
        den_u2 = np.zeros((M, M, M))
        A = self._ALIAS
        for mx in range(-A, A + 1):
            nx_al = n1 + mx * M
            kx_al = (2.0 * math.pi * nx_al / self.box[0])[:, None, None]
            ux = sinc(math.pi * nx_al / M) ** 2
            ux = (ux * ux)[:, None, None]  # U^2 per dim
            for my in range(-A, A + 1):
                ny_al = n1 + my * M
                ky_al = (2.0 * math.pi * ny_al / self.box[1])[None, :, None]
                uy = sinc(math.pi * ny_al / M) ** 2
                uy = (uy * uy)[None, :, None]
                for mz in range(-A, A + 1):
                    nz_al = n1 + mz * M
                    kz_al = (2.0 * math.pi * nz_al / self.box[2])[None, None, :]
                    uz = sinc(math.pi * nz_al / M) ** 2
                    uz = (uz * uz)[None, None, :]
                    u2 = ux * uy * uz
                    k2_al = kx_al ** 2 + ky_al ** 2 + kz_al ** 2
                    with np.errstate(divide="ignore", invalid="ignore"):
                        g_al = (
                            4.0
                            * math.pi
                            * np.exp(-k2_al / (4.0 * self.alpha ** 2))
                            / (k2_al * self.volume)
                        )
                    if mx == 0 and my == 0 and mz == 0:
                        g_al[0, 0, 0] = 0.0
                    kdot = kx * kx_al + ky * ky_al + kz * kz_al
                    num += kdot * u2 * g_al
                    den_u2 += u2
        with np.errstate(divide="ignore", invalid="ignore"):
            influence = num / (k2 * den_u2 * den_u2)
        influence[0, 0, 0] = 0.0  # tinfoil boundary: no k=0 contribution
        self.influence = influence
        self.kx, self.ky, self.kz = kx, ky, kz
        self._build_self_kernels()

    def _build_self_kernels(self) -> None:
        """Real-space influence kernel at the 27 CIC node displacements.

        A particle's own CIC charge cloud contributes to the potential and
        field interpolated back at its position; this *mesh self
        interaction* depends on where the particle sits within its cell and
        is the dominant mesh error if corrected only by the analytic
        ``-2 alpha / sqrt(pi)`` term.  We instead subtract it exactly:
        ``self_pot_i = q_i * sum_d K(d) S_i(d)`` where ``K(d)`` is the
        real-space influence kernel at node displacement ``d`` and ``S_i``
        the per-particle weight autocorrelation (separable over dims).
        """
        M = self.M
        npts = float(M) ** 3
        kernel = np.fft.ifftn(self.influence).real * npts
        e_kernel = np.empty((3, M, M, M))
        for d, k in enumerate((self.kx, self.ky, self.kz)):
            e_kernel[d] = np.fft.ifftn(-1j * k * self.influence).real * npts
        idx = np.array([-1, 0, 1]) % M
        self._self_pot_kernel = kernel[np.ix_(idx, idx, idx)]
        self._self_field_kernel = e_kernel[np.ix_(np.arange(3), idx, idx, idx)]
        # exact smeared self potential psi0 = sum_{k != 0} G(k): the value
        # the periodic k-space kernel takes at zero displacement (includes
        # the physical interaction of a particle with its own images)
        k1 = 2.0 * math.pi * np.fft.fftfreq(M, d=1.0 / M)
        kmax_needed = 8.0 * self.alpha  # Gaussian negligible beyond this
        mmax = int(np.ceil(kmax_needed * float(self.box.max()) / (2.0 * math.pi))) + 1
        ms = np.arange(-mmax, mmax + 1)
        gx, gy, gz = np.meshgrid(
            (2.0 * math.pi * ms / self.box[0]) ** 2,
            (2.0 * math.pi * ms / self.box[1]) ** 2,
            (2.0 * math.pi * ms / self.box[2]) ** 2,
            indexing="ij",
        )
        k2_all = gx + gy + gz
        with np.errstate(divide="ignore", invalid="ignore"):
            g_all = 4.0 * math.pi * np.exp(-k2_all / (4.0 * self.alpha ** 2)) / (
                k2_all * self.volume
            )
        g_all[mmax, mmax, mmax] = 0.0
        self.psi0 = float(g_all.sum())

    def _self_weights(self, frac: np.ndarray) -> np.ndarray:
        """Per-particle weight autocorrelation ``S_i(d)``, shape (n, 3, 3).

        Per dimension: ``s(-1) = s(+1) = w0 w1``, ``s(0) = w0^2 + w1^2``
        with ``w0 = 1 - frac``, ``w1 = frac``; the 3-D factor is the outer
        product over dimensions (returned per-dim, combined by the caller).
        """
        w0 = 1.0 - frac
        w1 = frac
        s = np.empty(frac.shape[:1] + (3, 3))  # (n, dim, displacement {-1,0,1})
        s[:, :, 0] = w0 * w1
        s[:, :, 1] = w0 * w0 + w1 * w1
        s[:, :, 2] = w0 * w1
        return s

    def mesh_self_interaction(self, pos: np.ndarray, q: np.ndarray):
        """Exact per-particle mesh self potential and field contributions."""
        n = pos.shape[0]
        if n == 0:
            return np.zeros(0), np.zeros((0, 3))
        _, frac = cic_fractions(pos, self.offset, self.h, self.M)
        s = self._self_weights(frac)
        # S(d) = s_x(dx) s_y(dy) s_z(dz); contract with the 3^3 kernels
        sx = s[:, 0, :]  # (n, 3)
        sy = s[:, 1, :]
        sz = s[:, 2, :]
        Kp = self._self_pot_kernel  # (3, 3, 3)
        pot = np.einsum("ni,nj,nk,ijk->n", sx, sy, sz, Kp) * q
        Kf = self._self_field_kernel  # (3 dims, 3, 3, 3)
        field = np.einsum("ni,nj,nk,dijk->nd", sx, sy, sz, Kf) * q[:, None]
        return pot, field

    # -- charge assignment ---------------------------------------------------------

    def assign(self, pos: np.ndarray, q: np.ndarray) -> np.ndarray:
        """CIC-assign charges onto a fresh mesh (density includes 1/h^3)."""
        M = self.M
        mesh = np.zeros((M, M, M), dtype=np.float64)
        if pos.shape[0] == 0:
            return mesh
        base, frac = cic_fractions(pos, self.offset, self.h, M)
        for dx in (0, 1):
            wxs = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
            ix = (base[:, 0] + dx) % M
            for dy in (0, 1):
                wys = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
                iy = (base[:, 1] + dy) % M
                for dz in (0, 1):
                    wzs = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                    iz = (base[:, 2] + dz) % M
                    np.add.at(mesh, (ix, iy, iz), q * wxs * wys * wzs)
        return mesh

    def interpolate(self, mesh: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """CIC-interpolate a mesh field at particle positions."""
        M = self.M
        if pos.shape[0] == 0:
            return np.zeros(0)
        base, frac = cic_fractions(pos, self.offset, self.h, M)
        out = np.zeros(pos.shape[0], dtype=np.float64)
        for dx in (0, 1):
            wxs = (1.0 - frac[:, 0]) if dx == 0 else frac[:, 0]
            ix = (base[:, 0] + dx) % M
            for dy in (0, 1):
                wys = (1.0 - frac[:, 1]) if dy == 0 else frac[:, 1]
                iy = (base[:, 1] + dy) % M
                for dz in (0, 1):
                    wzs = (1.0 - frac[:, 2]) if dz == 0 else frac[:, 2]
                    iz = (base[:, 2] + dz) % M
                    out += mesh[ix, iy, iz] * wxs * wys * wzs
        return out

    # -- solve -----------------------------------------------------------------------

    def solve(self, rho: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Potential and field meshes from a charge mesh.

        Returns ``(phi_mesh, e_mesh)`` with ``e_mesh`` of shape
        ``(3, M, M, M)`` (``E = -grad phi`` via ``ik`` differentiation).
        """
        npts = float(rho.size)
        rho_k = np.fft.fftn(rho)
        phi_k = rho_k * self.influence
        # Fourier-series synthesis: sum over k without ifftn's 1/M^3 factor
        phi = np.fft.ifftn(phi_k).real * npts
        e = np.empty((3,) + rho.shape, dtype=np.float64)
        for d, k in enumerate((self.kx, self.ky, self.kz)):
            e[d] = np.fft.ifftn(-1j * k * phi_k).real * npts
        return phi, e

    def kspace(
        self,
        pos: np.ndarray,
        q: np.ndarray,
        eval_pos: np.ndarray,
        correct_self: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Full k-space pipeline: assign ``(pos, q)``, solve, interpolate at
        ``eval_pos``.

        With ``correct_self`` (the default, requires ``eval_pos is pos``
        semantically — evaluation at the source particles), the mesh
        self-interaction of each particle's own charge cloud is subtracted
        *exactly* and replaced by the exact smeared self potential
        ``psi0 - 2 alpha/sqrt(pi)`` (own periodic images minus the
        unphysical point self term), which removes the dominant
        position-dependent mesh artifact.
        """
        rho = self.assign(pos, q)
        phi_mesh, e_mesh = self.solve(rho)
        pot = self.interpolate(phi_mesh, eval_pos)
        field = np.stack(
            [self.interpolate(e_mesh[d], eval_pos) for d in range(3)], axis=1
        )
        if correct_self:
            self_pot, self_field = self.mesh_self_interaction(eval_pos, q)
            pot = pot - self_pot + (self.psi0 - 2.0 * self.alpha / math.sqrt(math.pi)) * q
            field = field - self_field
        return pot, field

    def self_energy(self, q: np.ndarray) -> np.ndarray:
        """Per-particle self-interaction correction ``-2 alpha/sqrt(pi) q``."""
        return -2.0 * self.alpha / math.sqrt(math.pi) * q

    def background(self, total_charge: float) -> float:
        """Uniform neutralizing-background potential for non-neutral systems."""
        return -math.pi / (self.alpha ** 2 * self.volume) * total_charge
