"""Verlet neighbor lists with movement-based invalidation.

The same observation that powers the paper's method B — *particles move
only slightly per time step* — also powers the classic Verlet-list
optimization of the near field: build the pair list once with an enlarged
cutoff ``rc + skin`` and reuse it as long as the accumulated maximum
movement stays below ``skin / 2`` (then no pair can have crossed the true
cutoff undetected).

:class:`VerletNeighborList` wraps the linked-cell machinery to build the
enlarged-cutoff pair list and evaluates the Ewald real-space kernel over
the cached pairs, tracking the movement budget exactly like the library
tracks ``max_particle_move``.  It requires a *stable particle indexing*
between calls (same particles, same order) — the regime of a serial MD
loop or a fixed-decomposition rank; the parallel solvers keep plain linked
cells because their local particle sets change every redistribution.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.solvers.common.pairs import erfc_pairs, ragged_cross
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField

__all__ = ["VerletNeighborList"]


class VerletNeighborList:
    """Cached near-field pair list with a movement budget."""

    def __init__(
        self,
        box: np.ndarray,
        offset: np.ndarray,
        rc: float,
        alpha: float,
        skin: float = 0.3,
    ) -> None:
        if skin <= 0:
            raise ValueError(f"skin must be positive, got {skin}")
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        self.rc = float(rc)
        self.alpha = float(alpha)
        self.skin = float(skin)
        self._cells = LinkedCellNearField(self.box, self.offset, self.rc + self.skin, alpha)
        self._pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._n_cached = -1
        self._movement_budget = 0.0
        #: diagnostic counters
        self.rebuilds = 0
        self.reuses = 0

    # -- cache management ------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached list (e.g. after a redistribution)."""
        self._pairs = None
        self._n_cached = -1
        self._movement_budget = 0.0

    def _needs_rebuild(self, n: int, max_move: Optional[float]) -> bool:
        if self._pairs is None or n != self._n_cached:
            return True
        if max_move is None:
            return True  # unknown movement: cannot trust the cache
        return self._movement_budget + max_move > 0.5 * self.skin

    def _build(self, pos: np.ndarray) -> None:
        """Pair list at the enlarged cutoff via the linked-cell machinery."""
        lc = self._cells
        n = pos.shape[0]
        t_cells = lc.cell_ids(pos)
        order = np.argsort(t_cells, kind="stable")
        sorted_cells = t_cells[order]
        cells, first = np.unique(sorted_cells, return_index=True)
        last = np.concatenate((first[1:], [n]))
        cz = cells % lc.dims[2]
        cy = (cells // lc.dims[2]) % lc.dims[1]
        cx = cells // (lc.dims[1] * lc.dims[2])
        pair_t, pair_s = [], []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nx = (cx + dx) % lc.dims[0]
                    ny = (cy + dy) % lc.dims[1]
                    nz = (cz + dz) % lc.dims[2]
                    ncell = (nx * lc.dims[1] + ny) * lc.dims[2] + nz
                    s_start = np.searchsorted(sorted_cells, ncell, side="left")
                    s_end = np.searchsorted(sorted_cells, ncell, side="right")
                    ti, si = ragged_cross(first, last, s_start, s_end)
                    if ti.size:
                        pair_t.append(order[ti])
                        pair_s.append(order[si])
        if pair_t:
            ti = np.concatenate(pair_t)
            si = np.concatenate(pair_s)
            if lc.needs_dedup:
                key = ti * np.int64(n) + si
                _, keep = np.unique(key, return_index=True)
                ti, si = ti[keep], si[keep]
            # keep only pairs within the enlarged cutoff (tightens the list)
            d = pos[ti] - pos[si]
            d -= np.round(d / self.box) * self.box
            r2 = (d * d).sum(axis=1)
            within = (r2 > 0) & (r2 <= (self.rc + self.skin) ** 2)
            self._pairs = (ti[within], si[within])
        else:
            self._pairs = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        self._n_cached = n
        self._movement_budget = 0.0
        self.rebuilds += 1

    # -- evaluation ----------------------------------------------------------------

    def compute(
        self,
        pos: np.ndarray,
        q: np.ndarray,
        max_move: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Ewald real-space sums using the cached pair list when valid.

        ``max_move`` is the maximum particle displacement since the
        *previous* call (the application's bound); without it the list is
        rebuilt every time.  Returns ``(pot, field, pair_count)``.
        """
        n = pos.shape[0]
        if self._needs_rebuild(n, max_move):
            self._build(pos)
        else:
            self._movement_budget += float(max_move)
            self.reuses += 1
        ti, si = self._pairs
        pot, field, count = erfc_pairs(
            pos, pos, q, ti, si, self.alpha, self.rc, box=self.box
        )
        return pot, field, count
