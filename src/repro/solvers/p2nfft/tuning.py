"""Ewald-splitting parameter selection for the P2NFFT solver.

Given a real-space cutoff ``rc`` (the paper fixes 4.8 for the silica
system) and a target accuracy, the tuning step chooses the splitting
parameter ``alpha`` and the mesh size ``M``:

* the real-space truncation error scales like ``exp(-(alpha rc)^2)``
  (Kolafa & Perram), so ``alpha = sqrt(-ln eps) / rc``;
* the reciprocal-space accuracy of the CIC mesh is governed by ``alpha h``
  (``h = L / M``); the constant below is calibrated against the exact Ewald
  reference in the test suite.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["tune_ewald_splitting", "suggest_cutoff", "optimize_cutoff"]

#: calibrated bound on alpha * h for the CIC (order 2) mesh at the
#: reference accuracy 1e-3; the mesh error scales ~ (alpha h)^2 with the
#: optimal influence function, so tighter accuracies shrink the bound
_ALPHA_H_MAX = 0.45
_REFERENCE_ACCURACY = 1e-3


def suggest_cutoff(box: np.ndarray, n: int) -> float:
    """A density-balanced default cutoff (~25 neighbors per particle)."""
    box = np.asarray(box, dtype=np.float64)
    volume = float(np.prod(box))
    rho = n / volume
    rc = (3.0 * 25.0 / (4.0 * math.pi * rho)) ** (1.0 / 3.0)
    return min(rc, 0.5 * float(box.min()))


def optimize_cutoff(
    box: np.ndarray,
    n: int,
    accuracy: float,
    candidates: int = 12,
) -> float:
    """Model-driven cutoff selection: minimize predicted near + mesh work.

    A larger cutoff means more real-space pairs but a smaller alpha and
    hence a coarser mesh; the optimum balances the two.  Costs come from
    the same kernel constants the machine charges, so the tuner optimizes
    exactly the quantity the benchmarks report.
    """
    from repro import kernels

    box = np.asarray(box, dtype=np.float64)
    volume = float(np.prod(box))
    rho = n / volume
    rc_max = 0.5 * float(box.min())
    best_rc, best_cost = None, math.inf
    for i in range(1, candidates + 1):
        rc = rc_max * i / candidates
        try:
            alpha, M = tune_ewald_splitting(box, rc, accuracy)
        except ValueError:
            continue
        pairs_per_particle = rho * (4.0 / 3.0) * math.pi * rc ** 3
        near = n * pairs_per_particle * kernels.ERFC_PAIR
        mesh = (
            n * 5.0 * kernels.MESH_ASSIGNMENT
            + 5.0 * (float(M) ** 3) * 3.0 * math.log2(max(M, 2)) * kernels.FFT_POINT_STAGE
        )
        cost = near + mesh
        if cost < best_cost:
            best_rc, best_cost = rc, cost
    if best_rc is None:
        raise ValueError("no admissible cutoff found")
    return best_rc


def tune_ewald_splitting(
    box: np.ndarray,
    rc: float,
    accuracy: float,
    max_mesh: int = 256,
) -> Tuple[float, int]:
    """Choose ``(alpha, M)`` for cutoff ``rc`` and target relative accuracy."""
    box = np.asarray(box, dtype=np.float64)
    if rc <= 0 or rc > 0.5 * float(box.min()):
        raise ValueError(
            f"cutoff must be in (0, {0.5 * float(box.min())}], got {rc}"
        )
    if accuracy <= 0:
        raise ValueError(f"accuracy must be positive, got {accuracy}")
    alpha = math.sqrt(max(-math.log(accuracy), 1.0)) / rc
    alpha_h = _ALPHA_H_MAX * math.sqrt(min(accuracy / _REFERENCE_ACCURACY, 1.0))
    h_max = alpha_h / alpha
    M = int(math.ceil(float(box.max()) / h_max))
    # round to the next even size (friendlier FFT factorizations)
    M += M % 2
    M = max(8, min(M, max_mesh))
    return alpha, M
