"""Grid-based P2NFFT-style solver (Ewald splitting on a particle mesh).

Following Sect. II-C of the paper, the solver splits the periodic Coulomb
sum into:

* a **real-space near field** — ``erfc(alpha r)/r`` over all pairs within a
  cutoff radius, computed with a linked-cell algorithm over each process's
  subdomain plus **ghost particles** duplicated from neighboring processes
  during the particle data redistribution;
* a **Fourier-space far field** — charges are assigned to a regular mesh,
  solved with FFTs against the Ewald influence function, and forces are
  interpolated back (an NFFT onto a uniform target grid degenerates to
  exactly this P3M pipeline; DESIGN.md §2 records the substitution).

The domain decomposition distributes the particle system uniformly among a
Cartesian process grid; the target process of every particle is computed
from its position and the redistribution uses the fine-grained
data-distribution operation with duplication for the ghosts [13, 14].
"""

from repro.solvers.p2nfft.solver import P2NFFTSolver

__all__ = ["P2NFFTSolver"]
