"""Linked-cell real-space near field for the Ewald splitting.

"The calculations of the real space part require to consider all pairs of
particles that are located within a given cutoff radius to each other.
These computations are performed with a linked cell algorithm that sorts
all particles into boxes of size of the cutoff radius" (Sect. II-C).

Each rank computes the ``erfc(alpha r)/r`` contributions of its *owned*
particles (targets) against owned + ghost particles (sources).  Cells are
laid over the whole periodic box so cell coordinates are globally
consistent; pair displacements use the minimum image convention (valid for
``rc <= L/2``), so ghost copies do not need position shifting.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.perf import instrument
from repro.solvers.common.pairs import erfc_pairs, ragged_cross

__all__ = ["LinkedCellNearField"]

_OFFSETS = np.array(
    [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
    dtype=np.int64,
)


class LinkedCellNearField:
    """Reusable cell geometry for a fixed box and cutoff."""

    def __init__(
        self,
        box: np.ndarray,
        offset: np.ndarray,
        rc: float,
        alpha: float,
    ) -> None:
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        if rc <= 0 or rc > 0.5 * float(self.box.min()):
            raise ValueError(f"cutoff must be in (0, L/2], got {rc}")
        self.rc = float(rc)
        self.alpha = float(alpha)
        #: cells per dimension (cell edge >= rc)
        self.dims = np.maximum((self.box / self.rc).astype(np.int64), 1)
        self.cell = self.box / self.dims
        #: True when wrapped neighbor cells can coincide (tiny test boxes)
        self.needs_dedup = bool((self.dims < 3).any())

    def cell_ids(self, pos: np.ndarray) -> np.ndarray:
        """Global linear cell id of each position."""
        c = np.floor((pos - self.offset) / self.cell).astype(np.int64)
        c %= self.dims
        return (c[:, 0] * self.dims[1] + c[:, 1]) * self.dims[2] + c[:, 2]

    def candidate_pairs(
        self,
        t_first: np.ndarray,
        t_last: np.ndarray,
        s_sorted: np.ndarray,
        cx: np.ndarray,
        cy: np.ndarray,
        cz: np.ndarray,
        n_sources: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate (target, source) pairs over the 27 neighbor offsets.

        All segment tables (one per offset x occupied target cell) are built
        in one shot and handed to a single :func:`ragged_cross` call; the
        retained :meth:`candidate_pairs_reference` oracle issues one
        searchsorted + cross product per offset (the original 27-iteration
        loop).  Both emit pairs offset-major, cell-major — bitwise identical
        index arrays.
        """
        if instrument.prefer_reference():
            return self.candidate_pairs_reference(
                t_first, t_last, s_sorted, cx, cy, cz, n_sources
            )
        t0 = time.perf_counter_ns() if instrument.collecting() else 0
        # neighbor cell ids of every occupied target cell, (27, ncells)
        nx = (cx[None, :] + _OFFSETS[:, 0:1]) % self.dims[0]
        ny = (cy[None, :] + _OFFSETS[:, 1:2]) % self.dims[1]
        nz = (cz[None, :] + _OFFSETS[:, 2:3]) % self.dims[2]
        ncell = ((nx * self.dims[1] + ny) * self.dims[2] + nz).ravel()
        s_start = np.searchsorted(s_sorted, ncell, side="left")
        s_end = np.searchsorted(s_sorted, ncell, side="right")
        ti, si = ragged_cross(
            np.tile(t_first, 27), np.tile(t_last, 27), s_start, s_end
        )
        ti, si = self._dedup(ti, si, n_sources)
        if t0:
            instrument.record(
                "linked_cell.candidate_pairs",
                time.perf_counter_ns() - t0,
                ops=max(int(ti.shape[0]), 1),
            )
        return ti, si

    def candidate_pairs_reference(
        self,
        t_first: np.ndarray,
        t_last: np.ndarray,
        s_sorted: np.ndarray,
        cx: np.ndarray,
        cy: np.ndarray,
        cz: np.ndarray,
        n_sources: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scalar oracle of :meth:`candidate_pairs`: one searchsorted and
        cross product per neighbor offset (the original implementation)."""
        pair_ti = []
        pair_si = []
        for d in _OFFSETS:
            nx = (cx + d[0]) % self.dims[0]
            ny = (cy + d[1]) % self.dims[1]
            nz = (cz + d[2]) % self.dims[2]
            ncell = (nx * self.dims[1] + ny) * self.dims[2] + nz
            s_start = np.searchsorted(s_sorted, ncell, side="left")
            s_end = np.searchsorted(s_sorted, ncell, side="right")
            ti, si = ragged_cross(t_first, t_last, s_start, s_end)
            if ti.size:
                pair_ti.append(ti)
                pair_si.append(si)
        if not pair_ti:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ti = np.concatenate(pair_ti)
        si = np.concatenate(pair_si)
        return self._dedup(ti, si, n_sources)

    def _dedup(
        self, ti: np.ndarray, si: np.ndarray, n_sources: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if self.needs_dedup and ti.size:
            # wrapped neighbor cells can coincide for dims < 3: keep each
            # (target, source) pair once (min-image picks the one image
            # within rc, unique for rc <= L/2)
            key = ti * np.int64(n_sources) + si
            _, keep = np.unique(key, return_index=True)
            ti = ti[keep]
            si = si[keep]
        return ti, si

    def compute(
        self,
        tpos: np.ndarray,
        spos: np.ndarray,
        sq: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Near-field potentials/fields of targets against sources.

        Returns ``(pot, field, pair_count)`` aligned with ``tpos`` (input
        order).  ``pair_count`` is the number of kernel evaluations — the
        workload figure the performance model charges.
        """
        nt = tpos.shape[0]
        if nt == 0 or spos.shape[0] == 0:
            return np.zeros(nt), np.zeros((nt, 3)), 0

        t_cells = self.cell_ids(tpos)
        s_cells = self.cell_ids(spos)
        t_order = np.argsort(t_cells, kind="stable")
        s_order = np.argsort(s_cells, kind="stable")
        tpos_s = tpos[t_order]
        spos_s = spos[s_order]
        sq_s = sq[s_order]
        t_sorted = t_cells[t_order]
        s_sorted = s_cells[s_order]

        cells, t_first = np.unique(t_sorted, return_index=True)
        t_last = np.concatenate((t_first[1:], [t_sorted.shape[0]]))
        cz = cells % self.dims[2]
        cy = (cells // self.dims[2]) % self.dims[1]
        cx = cells // (self.dims[1] * self.dims[2])

        ti, si = self.candidate_pairs(
            t_first, t_last, s_sorted, cx, cy, cz, spos.shape[0]
        )
        if ti.size == 0:
            return np.zeros(nt), np.zeros((nt, 3)), 0

        pot_s, field_s, pairs = erfc_pairs(
            tpos_s, spos_s, sq_s, ti, si, self.alpha, self.rc, box=self.box
        )
        pot = np.zeros(nt)
        field = np.zeros((nt, 3))
        pot[t_order] = pot_s
        field[t_order] = field_s
        return pot, field, pairs
