"""Parallel P2NFFT-style solver: Cartesian process-grid decomposition.

Execution of one ``fcs_run`` (Sect. II-C / III of the paper):

1. **sort** (the solver's particle data redistribution) — every particle is
   sent to the grid rank owning its position, carrying a packed 64-bit
   index value (source rank, source position); particles close to
   subdomain boundaries are *duplicated* to the neighboring ranks as ghost
   particles, all within one fine-grained data redistribution with a
   user-defined distribution function [13, 14].  When the application's
   maximum-movement bound limits the redistribution to direct grid
   neighbors, the all-to-all is replaced by neighborhood point-to-point
   communication (Sect. III-B).
2. **near** — linked-cell Ewald real-space sums of owned particles against
   owned + ghosts.
3. **mesh/fft** — the Fourier-space part on the global mesh; the data plane
   evaluates one global FFT while the cost model charges the distributed
   pencil-FFT compute and transpose communication.
4. method A: **restore** — potentials and fields return to the original
   order and distribution via the index values; or method B: ghosts are
   dropped, the redistributed particle data is returned in place, and
   resort indices are created by inverting the index values.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Optional, Tuple

import numpy as np

from repro import kernels
from repro.core.fine_grained import fine_grained_redistribute
from repro.core.movement import p2nfft_prefers_neighborhood
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import initial_numbering, invert_indices
from repro.core.restore import restore_results
from repro.simmpi.cart import CartGrid
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver
from repro.solvers.p2nfft.linked_cell import LinkedCellNearField
from repro.solvers.p2nfft.mesh import MeshSolver
from repro.solvers.p2nfft.tuning import (
    optimize_cutoff,
    suggest_cutoff,
    tune_ewald_splitting,
)

__all__ = ["P2NFFTSolver", "ghost_distribution", "charge_parallel_fft"]


def _near_rank_task(near, tpos, spos, sq):
    """One rank's near-field evaluation, as an execution-backend task.

    Top-level so worker processes can import it by dotted path; ``near``
    (the shared :class:`LinkedCellNearField` geometry) ships once per
    fan-out.  Pure and deterministic — backend results are bitwise those of
    calling ``near.compute`` inline.
    """
    return near.compute(tpos, spos, sq)


def ghost_distribution(
    grid: CartGrid,
    pos: np.ndarray,
    rc: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """(element, target) pairs: owner plus ghost duplicates within ``rc``.

    The distribution function of the generalized fine-grained
    redistribution: each particle goes to the rank owning its position, and
    copies go to every rank whose subdomain lies within the cutoff radius
    (the ghost-creation rule of Sect. II-C).  Duplicate (element, target)
    pairs arising from periodic wrap-around on small grids are removed.
    """
    n = pos.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    box = grid.box
    wrapped = grid.offset + np.mod(pos - grid.offset, box)
    cells = grid.cell_of_positions(wrapped)
    owner = grid.rank_of(cells)
    elems = [np.arange(n, dtype=np.int64)]
    targets = [owner]
    rel = wrapped - grid.offset - cells * grid.cell  # in [0, cell)
    ring = np.maximum(np.ceil(rc / grid.cell).astype(np.int64), 1)
    ranges = [range(-int(r), int(r) + 1) for r in ring]
    for o in itertools.product(*ranges):
        if o == (0, 0, 0):
            continue
        d2 = np.zeros(n)
        for k in range(3):
            if o[k] > 0:
                dk = (o[k] - 1) * grid.cell[k] + (grid.cell[k] - rel[:, k])
            elif o[k] < 0:
                dk = (-o[k] - 1) * grid.cell[k] + rel[:, k]
            else:
                continue
            d2 += dk * dk
        within = d2 < rc * rc
        if not within.any():
            continue
        nbr = grid.rank_of(cells[within] + np.asarray(o, dtype=np.int64))
        keep = nbr != owner[within]
        elems.append(np.flatnonzero(within)[keep])
        targets.append(nbr[keep])
    e = np.concatenate(elems)
    t = np.concatenate(targets)
    # dedup on a packed 1-D key (much cheaper than a 2-column unique)
    packed = e * np.int64(grid.nprocs) + t
    packed = np.unique(packed)
    return packed // np.int64(grid.nprocs), packed % np.int64(grid.nprocs)


def charge_parallel_fft(machine: Machine, M: int, n_transforms: int, phase: str) -> None:
    """Charge the cost of ``n_transforms`` distributed pencil FFTs.

    Per transform: the local butterfly work of ``M^3 log2(M^3) / P`` points
    plus two transpose all-to-alls exchanging the rank's full mesh share
    among ``~sqrt(P)`` pencil peers.
    """
    P = machine.nprocs
    model = machine.model
    points = float(M) ** 3
    stages = 3.0 * math.log2(max(M, 2))
    compute = kernels.FFT_POINT_STAGE * points * stages / P * n_transforms
    machine.compute(np.full(P, compute), phase=phase)
    peers = max(1, int(math.isqrt(P)) - 1)
    bytes_per_rank = 16.0 * points / P
    machine.synchronize()
    # transposes are *structured* all-to-alls (balanced, schedule known):
    # no incast-contention term, unlike the irregular redistribution traffic
    per_rank = (
        model.overhead * peers
        + model.latency
        + model.hop_latency * machine.topology.diameter() / 2.0
        + bytes_per_rank / model.bandwidth
    )
    bis = model.bisection_time(bytes_per_rank * P, machine.topology.bisection_links())
    per_round = max(per_rank, bis)
    machine.advance(
        np.full(P, per_round * 2.0 * n_transforms),
        phase,
        messages=2 * n_transforms * peers * P,
        nbytes=int(2 * n_transforms * bytes_per_rank * P),
    )


class P2NFFTSolver(Solver):
    """Ewald-splitting particle-mesh solver on a Cartesian process grid."""

    name = "p2nfft"

    def __init__(
        self,
        machine: Machine,
        cutoff: Optional[float] = None,
        alpha: Optional[float] = None,
        mesh_size: Optional[int] = None,
        compute: str = "full",
    ) -> None:
        super().__init__(machine)
        if compute not in ("full", "skip"):
            raise ValueError(f"compute must be 'full' or 'skip', got {compute!r}")
        self._cutoff_override = cutoff
        self._alpha_override = alpha
        self._mesh_override = mesh_size
        #: ``"skip"`` omits the force arithmetic (results are zeros) while
        #: keeping every redistribution operation — including ghost
        #: creation — data-real, and charging solver compute from analytic
        #: workload estimates (DESIGN.md §5)
        self.compute_mode = compute
        self.rc: Optional[float] = None
        self.alpha: Optional[float] = None
        self.mesh: Optional[MeshSolver] = None
        self.near: Optional[LinkedCellNearField] = None
        self.grid: Optional[CartGrid] = None

    def set_common(self, *, box, offset=(0.0, 0.0, 0.0), periodic: bool = True) -> None:
        if not periodic:
            raise ValueError("the P2NFFT solver supports periodic systems only")
        super().set_common(box=box, offset=offset, periodic=periodic)

    # -- solver-specific setter functions (fcs_p2nfft_set_*) ----------------------

    def set_cutoff(self, rc: Optional[float]) -> None:
        """Fix the real-space cutoff radius (None = density-based default).

        The paper's benchmarks use a fixed cutoff of 4.8 for the silica
        system."""
        if rc is not None and rc <= 0:
            raise ValueError(f"cutoff must be positive, got {rc}")
        self._cutoff_override = rc
        self._tuned = False

    def set_alpha(self, alpha: Optional[float]) -> None:
        """Fix the Ewald splitting parameter (None = tuned from accuracy)."""
        if alpha is not None and alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self._alpha_override = alpha
        self._tuned = False

    def set_mesh_size(self, M: Optional[int]) -> None:
        """Fix the FFT mesh size per dimension (None = tuned)."""
        if M is not None and M < 4:
            raise ValueError(f"mesh size must be >= 4, got {M}")
        self._mesh_override = M
        self._tuned = False

    # -- tuning ------------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Choose splitting parameter and mesh size; build grid and cells."""
        self.require_common()
        n = particles.total()
        if self._cutoff_override is not None:
            self.rc = self._cutoff_override
        else:
            # model-driven: balance real-space pair work against mesh work
            try:
                self.rc = optimize_cutoff(self.box, n, accuracy)
            except ValueError:
                self.rc = suggest_cutoff(self.box, n)
        alpha, M = tune_ewald_splitting(self.box, self.rc, accuracy)
        if self._alpha_override is not None:
            alpha = float(self._alpha_override)
        if self._mesh_override is not None:
            M = int(self._mesh_override)
        self.alpha = alpha
        self.mesh_size = M
        if self.compute_mode == "full":
            self.mesh = MeshSolver(M, self.box, self.offset, alpha)
            self.near = LinkedCellNearField(self.box, self.offset, self.rc, alpha)
        self.grid = CartGrid(self.machine.nprocs, self.box, self.offset, periodic=True)
        self.machine.barrier(phase="tune")
        self.machine.compute(kernels.FFT_POINT_STAGE * float(M) ** 3, phase="tune")
        self._tuned = True

    # -- run --------------------------------------------------------------------------

    def run(
        self,
        particles: ParticleSet,
        *,
        resort: bool = False,
        max_move: Optional[float] = None,
    ) -> RunReport:
        self.require_common()
        if not self._tuned:
            raise RuntimeError("fcs_tune must run before fcs_run")
        machine = self.machine
        P = machine.nprocs
        old_counts = particles.counts()

        neighborhood = (
            max_move is not None and p2nfft_prefers_neighborhood(self.grid, max_move)
        )
        comm = "neighborhood" if neighborhood else "alltoall"
        strategy = f"grid+{comm}"

        # --- forward redistribution with ghost duplication (phase: sort) ----
        numbering = initial_numbering(old_counts)
        blocks: List[ColumnBlock] = []
        cost = np.zeros(P)
        for r in range(P):
            blocks.append(
                ColumnBlock(
                    pos=particles.pos[r].copy(),
                    q=particles.q[r].copy(),
                    index=numbering[r],
                )
            )
            cost[r] = kernels.KEY_GENERATION * old_counts[r]
        machine.compute(cost, phase="keygen")

        # compute the distribution (owners + ghost duplicates) for all ranks
        # in one vectorised pass; the per-rank distribution function then
        # just slices the precomputed pairs (semantically identical, far
        # cheaper at high process counts)
        all_pos = np.concatenate([b["pos"] for b in blocks])
        rank_offsets = np.concatenate(([0], np.cumsum(old_counts)))
        g_elems, g_targets = ghost_distribution(self.grid, all_pos, self.rc)
        order = np.argsort(g_elems, kind="stable")
        g_elems = g_elems[order]
        g_targets = g_targets[order]
        split_at = np.searchsorted(g_elems, rank_offsets)
        per_rank_pairs = [
            (
                g_elems[split_at[r]:split_at[r + 1]] - rank_offsets[r],
                g_targets[split_at[r]:split_at[r + 1]],
            )
            for r in range(P)
        ]

        def dist(rank: int, block: ColumnBlock):
            return per_rank_pairs[rank]

        received = fine_grained_redistribute(machine, blocks, dist, phase="sort", comm=comm)

        # --- split owned / ghost -----------------------------------------------
        owned: List[ColumnBlock] = []
        local_all: List[ColumnBlock] = []
        for r in range(P):
            block = received[r]
            if block.n:
                owner = self.grid.rank_of_positions(block["pos"])
                own_mask = owner == r
                owned.append(block.take(np.flatnonzero(own_mask)))
            else:
                owned.append(ColumnBlock.empty_like(block, 0))
            local_all.append(block)
        new_counts = np.asarray([b.n for b in owned], dtype=np.int64)

        # --- real-space near field (phase: near) -------------------------------
        pots: List[np.ndarray] = []
        fields: List[np.ndarray] = []
        near_cost = np.zeros(P)
        bin_cost = np.zeros(P)
        pair_density = (
            float(sum(new_counts)) / float(np.prod(self.box))
            * (4.0 / 3.0) * np.pi * self.rc ** 3
        )
        backend = machine.backend
        if self.compute_mode != "skip" and backend is not None and backend.workers:
            # each rank's near field is an independent pure computation over
            # its owned + ghost particles — fan it out to the rank-owning
            # workers.  The task is deterministic, so results (and the pair
            # counts feeding the cost model) are bitwise those of the
            # sequential loop below.
            near_results = backend.rank_map(
                "repro.solvers.p2nfft.solver._near_rank_task",
                [
                    (owned[r]["pos"], local_all[r]["pos"], local_all[r]["q"])
                    for r in range(P)
                ],
                shared=self.near,
            )
        else:
            near_results = None
        for r in range(P):
            if self.compute_mode == "skip":
                pots.append(np.zeros(owned[r].n))
                fields.append(np.zeros((owned[r].n, 3)))
                near_cost[r] = kernels.ERFC_PAIR * owned[r].n * pair_density
            else:
                if near_results is not None:
                    pot_n, field_n, pairs = near_results[r]
                else:
                    pot_n, field_n, pairs = self.near.compute(
                        owned[r]["pos"], local_all[r]["pos"], local_all[r]["q"]
                    )
                pots.append(pot_n)
                fields.append(field_n)
                near_cost[r] = kernels.ERFC_PAIR * pairs
            bin_cost[r] = kernels.CELL_BINNING * local_all[r].n
        machine.compute(near_cost + bin_cost, phase="near")

        # --- Fourier-space far field (phases: mesh, fft) -------------------------
        if self.compute_mode == "full":
            gpos = np.concatenate([b["pos"] for b in owned])
            gq = np.concatenate([b["q"] for b in owned])
            pot_k, field_k = self.mesh.kspace(gpos, gq, gpos)
            total_charge = float(gq.sum())
            if abs(total_charge) > 1e-12:
                pot_k += self.mesh.background(total_charge)
        else:
            n_total = int(new_counts.sum())
            pot_k = np.zeros(n_total)
            field_k = np.zeros((n_total, 3))
        machine.compute(
            kernels.MESH_ASSIGNMENT * new_counts.astype(np.float64) * 5.0, phase="mesh"
        )
        # ghost mesh-layer exchange: one CIC layer of the local mesh surface
        local_mesh_pts = float(self.mesh_size) ** 3 / P
        surface = 6.0 * local_mesh_pts ** (2.0 / 3.0)
        machine.advance(
            np.full(P, machine.model.msg_time(1, surface * 8.0) * 6.0),
            phase="mesh",
            messages=6 * P,
            nbytes=int(surface * 8.0 * 6 * P),
        )
        charge_parallel_fft(machine, self.mesh_size, 5, phase="fft")

        offsets = np.concatenate(([0], np.cumsum(new_counts)))
        for r in range(P):
            sl = slice(offsets[r], offsets[r + 1])
            pots[r] = pots[r] + pot_k[sl]
            fields[r] = fields[r] + field_k[sl]

        # --- return path ------------------------------------------------------------
        if resort and particles.fits(new_counts):
            # drop ghosts, return the changed order and distribution
            for r in range(P):
                particles.replace(
                    r, owned[r]["pos"], owned[r]["q"], pots[r], fields[r]
                )
            resort_indices = invert_indices(
                machine,
                [b["index"] for b in owned],
                [int(c) for c in old_counts],
                phase="resort_index",
                comm=comm,
            )
            return RunReport(
                changed=True,
                resort_indices=resort_indices,
                old_counts=old_counts,
                new_counts=new_counts,
                strategy=strategy,
                comm=comm,
                rank_work=near_cost,
            )

        restore_results(
            machine,
            [b["index"] for b in owned],
            pots,
            fields,
            particles,
            [int(c) for c in old_counts],
            phase="restore",
        )
        return RunReport(
            changed=False,
            old_counts=old_counts,
            new_counts=old_counts,
            strategy=strategy,
            comm=comm,
            rank_work=near_cost,
        )
