"""O(n^2) direct Coulomb summation — the open-boundary accuracy oracle.

``phi_i = sum_{j != i} q_j / r_ij``, ``E_i = sum_{j != i} q_j (x_i - x_j)
/ r_ij^3`` (so the force on ``i`` is ``q_i E_i``).  The minimum-image
variant sums each pair once at its nearest periodic image — *not* the full
periodic lattice sum (use :mod:`repro.solvers.ewald_ref` for that), but a
useful sanity bound for short-ranged comparisons.

Chunked over targets to bound the ``O(n^2)`` temporary memory.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["direct_sum", "direct_energy"]


def direct_sum(
    pos: np.ndarray,
    q: np.ndarray,
    box: Optional[np.ndarray] = None,
    chunk: int = 2048,
) -> Tuple[np.ndarray, np.ndarray]:
    """Potentials and fields by direct summation.

    Parameters
    ----------
    pos, q:
        positions ``(n, 3)`` and charges ``(n,)``.
    box:
        if given, displacements use the minimum image convention in a
        periodic box of these edge lengths.
    chunk:
        number of target rows per vectorised block.

    Returns ``(pot, field)`` of shapes ``(n,)`` and ``(n, 3)``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    n = pos.shape[0]
    if pos.shape != (n, 3) or q.shape != (n,):
        raise ValueError(f"bad shapes: pos {pos.shape}, q {q.shape}")
    if box is not None:
        box = np.asarray(box, dtype=np.float64)
    pot = np.zeros(n, dtype=np.float64)
    field = np.zeros((n, 3), dtype=np.float64)
    for start in range(0, n, chunk):
        end = min(start + chunk, n)
        d = pos[start:end, None, :] - pos[None, :, :]
        if box is not None:
            d -= np.round(d / box) * box
        r2 = (d * d).sum(axis=2)
        np.fill_diagonal(r2[:, start:end], np.inf)
        inv_r = 1.0 / np.sqrt(r2)
        pot[start:end] = (q[None, :] * inv_r).sum(axis=1)
        field[start:end] = (q[None, :, None] * d * (inv_r / r2)[:, :, None]).sum(axis=1)
    return pot, field


def direct_energy(pos: np.ndarray, q: np.ndarray, box: Optional[np.ndarray] = None) -> float:
    """Total electrostatic energy ``0.5 sum_i q_i phi_i``."""
    pot, _ = direct_sum(pos, q, box)
    return float(0.5 * (np.asarray(q) * pot).sum())
