"""Vectorised pairwise interaction machinery.

Both solvers reduce their near fields to the same primitive: *for a set of
target particles and a set of source particles grouped into cells, evaluate
a pairwise kernel between every target and every source in neighboring
cells*.  :func:`ragged_cross` builds the flat pair index arrays for the
ragged cell-by-cell cross products without any Python-level per-cell loop,
and the kernel evaluators accumulate potential and field contributions.

Conventions: Gaussian units (``phi_i = sum_j q_j / r_ij``), fields are
``E_i = -grad_i phi`` so the force on particle ``i`` is ``q_i * E_i``.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
from scipy.special import erfc

from repro.perf import instrument

__all__ = [
    "ragged_cross",
    "ragged_cross_reference",
    "coulomb_pairs",
    "erfc_pairs",
    "segment_starts",
]


def segment_starts(sorted_ids: np.ndarray, n_segments: int) -> np.ndarray:
    """Start offsets (length ``n_segments + 1``) of each id's run in a
    sorted id array — the CSR-style index every cell structure uses."""
    sorted_ids = np.asarray(sorted_ids)
    return np.searchsorted(sorted_ids, np.arange(n_segments + 1))


def ragged_cross(
    t_starts: np.ndarray,
    t_ends: np.ndarray,
    s_starts: np.ndarray,
    s_ends: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat (target, source) index pairs of segment-by-segment cross products.

    For each segment ``k``, every target index in ``[t_starts[k],
    t_ends[k])`` is paired with every source index in ``[s_starts[k],
    s_ends[k])``; pairs are emitted segment-major, target-major.  Returns
    ``(ti, si)`` index arrays of equal length
    ``sum((t_ends-t_starts) * (s_ends-s_starts))``.

    The assembly is division-free: each target becomes a *run* of
    consecutive source indices, built from two ``np.repeat`` expansions and
    one subtraction instead of the per-pair ``divmod`` of
    :func:`ragged_cross_reference` (the retained scalar-arithmetic oracle —
    both produce bitwise-identical index arrays, enforced by
    ``tests/perf/test_oracle_equivalence.py``).
    """
    if instrument.prefer_reference():
        return ragged_cross_reference(t_starts, t_ends, s_starts, s_ends)
    t_starts = np.asarray(t_starts, dtype=np.int64)
    t_ends = np.asarray(t_ends, dtype=np.int64)
    s_starts = np.asarray(s_starts, dtype=np.int64)
    s_ends = np.asarray(s_ends, dtype=np.int64)
    nt = t_ends - t_starts
    ns = s_ends - s_starts
    pairs_per_seg = nt * ns
    total = int(pairs_per_seg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    t0 = time.perf_counter_ns() if instrument.collecting() else 0
    keep = pairs_per_seg > 0
    nt = nt[keep]
    ns = ns[keep]
    tstart = t_starts[keep]
    sstart = s_starts[keep]

    # one run of ns[k] consecutive source indices per target in segment k
    ntargets = int(nt.sum())
    seg_of_target = np.repeat(np.arange(nt.shape[0]), nt)
    target_starts = np.concatenate(([0], np.cumsum(nt)[:-1]))
    # target index of each run: segment base + position within the segment
    run_ti = (
        tstart[seg_of_target]
        + np.arange(ntargets, dtype=np.int64)
        - target_starts[seg_of_target]
    )
    reps = ns[seg_of_target]
    run_offsets = np.concatenate(([0], np.cumsum(reps)[:-1]))
    ti = np.repeat(run_ti, reps)
    # si counts sstart[k], sstart[k]+1, ... within each run
    si = np.arange(total, dtype=np.int64) + np.repeat(
        sstart[seg_of_target] - run_offsets, reps
    )
    if t0:
        instrument.record("pairs.ragged_cross", time.perf_counter_ns() - t0, ops=total)
    return ti, si


def ragged_cross_reference(
    t_starts: np.ndarray,
    t_ends: np.ndarray,
    s_starts: np.ndarray,
    s_ends: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar-arithmetic oracle of :func:`ragged_cross`: per-pair ``divmod``
    against the segment table (the original implementation)."""
    t_starts = np.asarray(t_starts, dtype=np.int64)
    t_ends = np.asarray(t_ends, dtype=np.int64)
    s_starts = np.asarray(s_starts, dtype=np.int64)
    s_ends = np.asarray(s_ends, dtype=np.int64)
    nt = t_ends - t_starts
    ns = s_ends - s_starts
    pairs_per_seg = nt * ns
    total = int(pairs_per_seg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    keep = pairs_per_seg > 0
    nt = nt[keep]
    ns = ns[keep]
    t0 = t_starts[keep]
    s0 = s_starts[keep]
    ppseg = pairs_per_seg[keep]

    seg_of_pair = np.repeat(np.arange(ppseg.shape[0]), ppseg)
    seg_offsets = np.concatenate(([0], np.cumsum(ppseg)[:-1]))
    within = np.arange(total, dtype=np.int64) - seg_offsets[seg_of_pair]
    # pair p within segment k: target = within // ns[k], source = within % ns[k]
    ti = t0[seg_of_pair] + within // ns[seg_of_pair]
    si = s0[seg_of_pair] + within % ns[seg_of_pair]
    return ti, si


def _accumulate(
    n_targets: int,
    ti: np.ndarray,
    dvec: np.ndarray,
    pot_contrib: np.ndarray,
    field_scale: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter-add pair contributions onto targets.

    ``field_scale`` multiplies the displacement vector (target - source) to
    give the field contribution of each pair.
    """
    pot = np.zeros(n_targets, dtype=np.float64)
    np.add.at(pot, ti, pot_contrib)
    field = np.zeros((n_targets, 3), dtype=np.float64)
    np.add.at(field, ti, dvec * field_scale[:, None])
    return pot, field


def coulomb_pairs(
    tpos: np.ndarray,
    spos: np.ndarray,
    sq: np.ndarray,
    ti: np.ndarray,
    si: np.ndarray,
    *,
    shift: Optional[np.ndarray] = None,
    box: Optional[np.ndarray] = None,
    cutoff: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Plain ``1/r`` kernel over pair lists.

    Parameters
    ----------
    tpos, spos, sq:
        target positions, source positions, source charges.
    ti, si:
        pair index arrays from :func:`ragged_cross`.
    shift:
        optional per-pair source position shift (periodic images), shape
        ``(npairs, 3)``.
    box:
        optional periodic box edges; displacements then use the minimum
        image convention (valid whenever interacting cells are smaller than
        half the box, which both solvers guarantee).
    cutoff:
        optional pair distance cutoff.

    Zero-distance pairs (a particle with itself, or an unshifted ghost
    duplicate) contribute nothing.  Returns ``(pot, field, pair_count)``
    where ``pair_count`` is the number of pairs actually evaluated — the
    workload count the performance model charges.
    """
    d = tpos[ti] - spos[si]
    if shift is not None:
        d = d - shift
    if box is not None:
        d = d - np.round(d / box) * box
    r2 = (d * d).sum(axis=1)
    mask = r2 > 0.0
    if cutoff is not None:
        mask &= r2 <= cutoff * cutoff
    d = d[mask]
    r2 = r2[mask]
    ti = ti[mask]
    q = sq[si[mask]]
    r = np.sqrt(r2)
    inv_r = 1.0 / r
    pot_c = q * inv_r
    field_s = q * inv_r / r2  # q / r^3
    pot, field = _accumulate(tpos.shape[0], ti, d, pot_c, field_s)
    return pot, field, int(mask.sum())


def erfc_pairs(
    tpos: np.ndarray,
    spos: np.ndarray,
    sq: np.ndarray,
    ti: np.ndarray,
    si: np.ndarray,
    alpha: float,
    cutoff: float,
    *,
    shift: Optional[np.ndarray] = None,
    box: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Ewald real-space kernel ``erfc(alpha r)/r`` over pair lists.

    The field kernel is ``(erfc(alpha r)/r + 2 alpha/sqrt(pi) exp(-alpha^2
    r^2)) / r^2`` times the displacement.  Pairs beyond ``cutoff`` and
    zero-distance pairs are skipped.  ``box`` enables minimum-image
    displacements as in :func:`coulomb_pairs`.  Returns ``(pot, field,
    pair_count)``.
    """
    d = tpos[ti] - spos[si]
    if shift is not None:
        d = d - shift
    if box is not None:
        d = d - np.round(d / box) * box
    r2 = (d * d).sum(axis=1)
    mask = (r2 > 0.0) & (r2 <= cutoff * cutoff)
    d = d[mask]
    r2 = r2[mask]
    ti = ti[mask]
    q = sq[si[mask]]
    r = np.sqrt(r2)
    inv_r = 1.0 / r
    e = erfc(alpha * r)
    pot_c = q * e * inv_r
    gauss = (2.0 * alpha / np.sqrt(np.pi)) * np.exp(-(alpha * alpha) * r2)
    field_s = q * (e * inv_r + gauss) / r2
    pot, field = _accumulate(tpos.shape[0], ti, d, pot_c, field_s)
    return pot, field, int(mask.sum())
