"""Shared numerical machinery for the solvers: cell structures, ragged
pair generation and pairwise Coulomb kernels."""

from repro.solvers.common.pairs import (
    coulomb_pairs,
    erfc_pairs,
    ragged_cross,
)

__all__ = ["coulomb_pairs", "erfc_pairs", "ragged_cross"]
