"""Parallel direct-summation solver (allgather + local O(n^2/P) work).

The reference baseline: each rank gathers all particle positions and
charges, then computes the interactions of its local particles against
everything.  No reordering or redistribution takes place, so the particle
order and distribution never change (``resort`` requests are reported as
unavailable — the query-function path of Sect. III-B).

Periodic boundaries use the Ewald reference for correctness on small
systems; open boundaries use the plain direct sum.  Practical only for
test-scale particle counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.core.particles import ParticleSet
from repro.simmpi.collectives import allgatherv
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver
from repro.solvers.direct import direct_sum
from repro.solvers.ewald_ref import ewald_sum

__all__ = ["DirectSolver"]


class DirectSolver(Solver):
    """O(n^2) direct summation over an allgathered particle system."""

    name = "direct"

    def __init__(self, machine: Machine, ewald_accuracy: float = 1e-10) -> None:
        super().__init__(machine)
        self.ewald_accuracy = float(ewald_accuracy)

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        self.require_common()
        self.machine.barrier(phase="tune")
        self._tuned = True

    def run(
        self,
        particles: ParticleSet,
        *,
        resort: bool = False,
        max_move: Optional[float] = None,
    ) -> RunReport:
        self.require_common()
        machine = self.machine
        counts = particles.counts()

        gathered_pos = allgatherv(machine, particles.pos, phase="gather")[0]
        gathered_q = allgatherv(machine, particles.q, phase="gather")[0]
        n = gathered_pos.shape[0]

        if self.periodic:
            pot_all, field_all = ewald_sum(
                gathered_pos, gathered_q, self.box, accuracy=self.ewald_accuracy
            )
        else:
            pot_all, field_all = direct_sum(gathered_pos, gathered_q)

        offsets = np.concatenate(([0], np.cumsum(counts)))
        per_rank_pairs = counts.astype(np.float64) * n
        machine.compute(kernels.PAIR_INTERACTION * per_rank_pairs, phase="near")
        for r in range(machine.nprocs):
            sl = slice(offsets[r], offsets[r + 1])
            particles.pot[r] = pot_all[sl].copy()
            particles.field[r] = field_all[sl].copy()

        # no reordering happened; method B has nothing to resort
        return RunReport(
            changed=False,
            old_counts=counts,
            new_counts=counts,
            strategy="direct",
            comm="alltoall",
        )
