"""Classical Ewald summation — the exact periodic reference.

Splits the conditionally convergent periodic Coulomb sum into a real-space
part (complementary error function, summed over nearby images), a Fourier
(k-space) part over reciprocal lattice vectors, and the self-interaction
correction:

``phi_i = sum_{j, images} q_j erfc(alpha r)/r
        + (4 pi / V) sum_{k != 0} exp(-k^2/4 alpha^2)/k^2 Re[exp(i k x_i) S(-k)]
        - 2 alpha/sqrt(pi) q_i``

with structure factor ``S(k) = sum_j q_j exp(-i k x_j)``.  For a
charge-neutral system the result is independent of ``alpha`` once both sums
are converged — which is exactly what the unit tests assert — and serves as
the accuracy oracle for the P2NFFT mesh solver and the periodic FMM.

Intended for reference-scale systems (n up to a few thousand).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy.special import erfc

__all__ = ["ewald_sum", "ewald_energy", "suggest_alpha"]


def suggest_alpha(box: np.ndarray, n: int, accuracy: float = 1e-8) -> float:
    """A reasonable splitting parameter for a cubic-ish box.

    Balances real and reciprocal workload for a real-space cutoff of half
    the minimum box edge: ``erfc(alpha * rc) ~ accuracy``.
    """
    box = np.asarray(box, dtype=np.float64)
    rc = 0.5 * float(box.min())
    # erfc(x) ~ exp(-x^2)/(x sqrt(pi)); solve exp(-(alpha rc)^2) = accuracy
    return math.sqrt(max(-math.log(accuracy), 1.0)) / rc


def ewald_sum(
    pos: np.ndarray,
    q: np.ndarray,
    box: np.ndarray,
    alpha: Optional[float] = None,
    rcut: Optional[float] = None,
    kmax: Optional[int] = None,
    accuracy: float = 1e-8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Potentials and fields of the fully periodic system.

    Parameters
    ----------
    pos, q:
        positions ``(n, 3)`` and charges ``(n,)``; the system should be
        charge neutral (a uniform neutralising background term is added
        otherwise).
    box:
        periodic box edge lengths ``(3,)`` (orthorhombic).
    alpha, rcut, kmax:
        splitting parameter, real-space cutoff and reciprocal cutoff
        (in integer k-units per dimension); derived from ``accuracy`` when
        omitted.

    Returns ``(pot, field)``.
    """
    pos = np.asarray(pos, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = pos.shape[0]
    if pos.shape != (n, 3) or q.shape != (n,) or box.shape != (3,):
        raise ValueError("bad shapes")
    volume = float(np.prod(box))
    if alpha is None:
        alpha = suggest_alpha(box, n, accuracy)
    if rcut is None:
        rcut = 0.5 * float(box.min())
    if kmax is None:
        # exp(-k^2 / 4 alpha^2) / k^2 <= accuracy with k = 2 pi m / L
        m = alpha * float(box.max()) / math.pi * math.sqrt(max(-math.log(accuracy), 1.0))
        kmax = max(2, int(math.ceil(m)))

    pot = np.zeros(n, dtype=np.float64)
    field = np.zeros((n, 3), dtype=np.float64)

    # --- real space: loop over the image shells needed to cover rcut -------
    # raw pair displacements lie in (-L, L) per dimension, so images within
    # rcut need shifts in [-(floor(rcut/L) + 1), floor(rcut/L) + 1]
    shells = (np.floor(rcut / box) + 1).astype(np.int64)
    for sx in range(-int(shells[0]), int(shells[0]) + 1):
        for sy in range(-int(shells[1]), int(shells[1]) + 1):
            for sz in range(-int(shells[2]), int(shells[2]) + 1):
                shift = np.array([sx, sy, sz], dtype=np.float64) * box
                d = pos[:, None, :] - pos[None, :, :] - shift[None, None, :]
                r2 = (d * d).sum(axis=2)
                if sx == 0 and sy == 0 and sz == 0:
                    np.fill_diagonal(r2, np.inf)
                mask = r2 <= rcut * rcut
                r2 = np.where(mask, r2, np.inf)
                r = np.sqrt(r2)
                e = erfc(alpha * r) / r
                pot += (q[None, :] * e).sum(axis=1)
                gauss = (2.0 * alpha / math.sqrt(math.pi)) * np.exp(-(alpha * alpha) * r2)
                scale = q[None, :] * (e + gauss) / r2
                field += (scale[:, :, None] * d).sum(axis=1)

    # --- reciprocal space ----------------------------------------------------
    ms = np.arange(-kmax, kmax + 1)
    mx, my, mz = np.meshgrid(ms, ms, ms, indexing="ij")
    mvecs = np.stack([mx.ravel(), my.ravel(), mz.ravel()], axis=1)
    mvecs = mvecs[np.any(mvecs != 0, axis=1)]
    kvecs = 2.0 * math.pi * mvecs / box[None, :]
    k2 = (kvecs * kvecs).sum(axis=1)
    # the full k-cube is kept; the Gaussian factor damps the corners anyway
    green = 4.0 * math.pi / volume * np.exp(-k2 / (4.0 * alpha * alpha)) / k2

    # structure factor, chunked over k to bound memory
    chunk = 512
    for start in range(0, kvecs.shape[0], chunk):
        kv = kvecs[start:start + chunk]
        g = green[start:start + chunk]
        phase = pos @ kv.T  # (n, nk)
        c = np.cos(phase)
        s = np.sin(phase)
        sc = q @ c  # Re S(-k)
        ss = q @ s  # Im S(-k) with our sign convention
        pot += c @ (g * sc) + s @ (g * ss)
        # E = -grad phi = sum_k g k [sin(kx_i) SC - cos(kx_i) SS]
        ex = s * (g * sc)[None, :] - c * (g * ss)[None, :]
        field += ex @ kv

    # --- self term and neutralising background --------------------------------
    pot -= 2.0 * alpha / math.sqrt(math.pi) * q
    total_charge = float(q.sum())
    if abs(total_charge) > 0:
        pot -= math.pi / (alpha * alpha * volume) * total_charge
    return pot, field


def ewald_energy(
    pos: np.ndarray,
    q: np.ndarray,
    box: np.ndarray,
    **kwargs,
) -> float:
    """Total electrostatic energy ``0.5 sum_i q_i phi_i`` of the periodic
    system."""
    pot, _ = ewald_sum(pos, q, box, **kwargs)
    return float(0.5 * (np.asarray(q) * pot).sum())
