"""Tree-based Fast Multipole Method with Z-order domain decomposition.

The solver follows the classical uniform-depth FMM [Greengard & Rokhlin
1987] with Cartesian Taylor expansions:

* the system box is recursively subdivided down to a leaf level; leaf boxes
  are numbered along the Z-Morton curve and particles are placed into boxes
  by **parallel sorting** of their box numbers (Sect. II-B of the paper) —
  partition-based [12] for disordered input, merge-based [15] under limited
  particle movement;
* near-field contributions (neighbor boxes) are summed directly; far-field
  contributions are approximated with multipole/local expansions
  (P2M -> M2M -> M2L -> L2L -> L2P);
* periodic systems use wrapped neighbor/interaction lists plus a truncated
  lattice operator at level 2 (see :mod:`repro.solvers.fmm.tree`).

The domain decomposition assigns each process a contiguous segment of the
Z-order curve, so the solver's particle order and distribution differ from
the application's — which is exactly what the paper's redistribution
methods manage.
"""

from repro.solvers.fmm.solver import FMMSolver

__all__ = ["FMMSolver"]
