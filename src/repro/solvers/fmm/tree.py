"""Uniform-depth FMM octree: interaction lists, tree passes, near field.

The system box is subdivided ``depth`` times (leaf grid ``2**depth`` per
dimension).  Boxes at every level are stored in dense row-major per-level
arrays; all passes are batched matrix operations over these arrays.

Interaction lists (well-separated pairs handled per level) follow the
classical rule: a source box ``w`` is in the interaction list of target
``b`` iff their parents are neighbors (Chebyshev distance <= 1) but the
boxes themselves are not.  For a displacement ``d = w - b`` and per-dim
target parity ``p`` this reduces to ``d_i in [-2, 3]`` for ``p_i = 0`` and
``d_i in [-3, 2]`` for ``p_i = 1``, with ``max_i |d_i| >= 2``.

Boundary conditions:

* **open** — displacements are clipped to the grid; levels 0/1 carry no
  interactions.
* **periodic** — neighbor and interaction lists wrap around the box.  At
  level 2 every pair of parent boxes is a (wrapped) neighbor, so level 2
  must account for *all* image displacements with Chebyshev distance >= 2.
  This is done with a truncated **lattice operator**: for each of the 64
  residue classes ``delta = d mod 4`` the M2L kernels of all images
  ``d = delta + 4R`` (``R`` in ``[-shells, shells]^3``, excluding the
  near-field images) are pre-summed into one matrix.  The truncation at
  ``shells`` periodic images is this solver's periodic approximation
  (DESIGN.md §2); the accompanying tests bound the resulting error against
  the exact Ewald reference.  Periodic runs require ``depth >= 3`` so that
  the minimum image convention identifies the adjacent-box image uniquely
  in the near field.
"""

from __future__ import annotations

import dataclasses
import itertools
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.solvers.common.pairs import coulomb_pairs, ragged_cross, segment_starts
from repro.solvers.fmm.expansions import Expansion

__all__ = ["FMMTree", "FarFieldStats", "leaf_index_of_positions", "OCTANTS"]

#: the 8 child-coordinate offsets within a parent box
OCTANTS = np.array(list(itertools.product((0, 1), repeat=3)), dtype=np.int64)


def _allowed_displacements(parity: Tuple[int, int, int]) -> np.ndarray:
    """Interaction-list displacements (source - target) for a target parity."""
    ranges = [range(-2, 4) if p == 0 else range(-3, 3) for p in parity]
    out = [
        d
        for d in itertools.product(*ranges)
        if max(abs(c) for c in d) >= 2
    ]
    return np.asarray(out, dtype=np.int64)


@lru_cache(maxsize=8)
def _parity_tables() -> Dict[Tuple[int, int, int], np.ndarray]:
    return {tuple(p): _allowed_displacements(tuple(p)) for p in OCTANTS.tolist()}


def leaf_index_of_positions(
    pos: np.ndarray,
    offset: np.ndarray,
    box: np.ndarray,
    depth: int,
    periodic: bool,
) -> np.ndarray:
    """Row-major leaf box index containing each position."""
    nside = 1 << depth
    rel = (np.asarray(pos, dtype=np.float64) - offset) / box * nside
    cells = np.floor(rel).astype(np.int64)
    if periodic:
        cells %= nside
    else:
        np.clip(cells, 0, nside - 1, out=cells)
    return (cells[:, 0] * nside + cells[:, 1]) * nside + cells[:, 2]


@dataclasses.dataclass
class FarFieldStats:
    """Workload counts of one far-field evaluation (for the cost model)."""

    p2m_particles: int = 0
    m2m_ops: int = 0
    m2l_ops: int = 0
    l2l_ops: int = 0
    l2p_particles: int = 0
    near_pairs: int = 0
    ncoef: int = 0


class FMMTree:
    """Geometry, operators and passes of a uniform FMM tree.

    The tree is reusable across runs as long as ``depth``, ``p`` and the
    box stay fixed (the tuning contract of ``fcs_tune``).
    """

    def __init__(
        self,
        depth: int,
        p: int,
        box: np.ndarray,
        offset: np.ndarray,
        periodic: bool,
        lattice_shells: int = 3,
        build_operators: bool = True,
    ) -> None:
        if periodic and depth < 3:
            raise ValueError("periodic FMM requires depth >= 3 (minimum image)")
        if depth < 2:
            raise ValueError("FMM requires depth >= 2 (no far field otherwise)")
        self.depth = int(depth)
        self.p = int(p)
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        self.periodic = bool(periodic)
        self.lattice_shells = int(lattice_shells)
        self.expansion = Expansion(p)
        self.ncoef = self.expansion.ncoef
        self.nside_leaf = 1 << depth
        self.nboxes_leaf = self.nside_leaf ** 3

        if build_operators:
            self._build_translation_ops()
            self._build_m2l_ops()
            if self.periodic:
                self._build_lattice_operator()

    # -- geometry ----------------------------------------------------------------

    def box_width(self, level: int) -> np.ndarray:
        """Edge lengths of a level-``level`` box."""
        return self.box / (1 << level)

    def box_centers(self, level: int, linear: np.ndarray) -> np.ndarray:
        """Centers of boxes given by row-major linear indices."""
        nside = 1 << level
        c = np.empty((np.asarray(linear).shape[0], 3), dtype=np.int64)
        lin = np.asarray(linear, dtype=np.int64)
        c[:, 2] = lin % nside
        c[:, 1] = (lin // nside) % nside
        c[:, 0] = lin // (nside * nside)
        return self.offset + (c + 0.5) * self.box_width(level)

    # -- operator precomputation ----------------------------------------------------

    def _build_translation_ops(self) -> None:
        """Per-level M2M / L2L matrices for the 8 octants.

        Child-center offset from the parent center at level ``l`` (children
        live at level ``l+1``) is ``(octant - 0.5) * w_{l+1}``.
        """
        self._m2m: List[np.ndarray] = []  # [level][octant] -> (ncoef, ncoef)
        self._l2l: List[np.ndarray] = []
        for level in range(self.depth):
            w_child = self.box_width(level + 1)
            m2m = np.empty((8, self.ncoef, self.ncoef))
            l2l = np.empty((8, self.ncoef, self.ncoef))
            for o, oct_ in enumerate(OCTANTS):
                s = (oct_ - 0.5) * w_child
                m2m[o] = self.expansion.m2m_matrix(s)
                l2l[o] = self.expansion.l2l_matrix(s)
            self._m2m.append(m2m)
            self._l2l.append(l2l)

    def _build_m2l_ops(self) -> None:
        """M2L kernels for the 316 unique displacements, per level.

        The kernel argument is ``t = center_target - center_source =
        -d * w_level``; matrices are computed once for unit box width and
        rescaled per level with the homogeneity of ``T``.
        """
        disp = np.asarray(
            [
                d
                for d in itertools.product(range(-3, 4), repeat=3)
                if max(abs(c) for c in d) >= 2
            ],
            dtype=np.int64,
        )
        self._m2l_disp = disp  # (316, 3), d = source - target
        w1 = self.box_width(0)  # unit: level-0 width = box
        K_unit = self.expansion.m2l_matrices(-disp.astype(np.float64) * w1)
        self._m2l_by_level: List[Optional[np.ndarray]] = [None, None]
        for level in range(2, self.depth + 1):
            scale = self.expansion.m2l_scale(1.0 / (1 << level))
            self._m2l_by_level.append(K_unit * scale[None, :, :])
        self._disp_position = {tuple(d): i for i, d in enumerate(disp.tolist())}

    def _build_lattice_operator(self) -> None:
        """Pre-summed level-2 M2L kernels over whole unit-cell images.

        For every *in-cell* box displacement ``delta = s - b`` (``delta`` in
        ``[-3, 3]^3``) the kernels of the image displacements ``d = delta +
        4R`` with ``R`` in ``[-shells, shells]^3`` and ``Cheb(d) >= 2`` are
        pre-summed.  Truncating at whole unit-cell images keeps every
        included image set charge-complete (each cell is the full neutral
        system), so the truncated sum converges to the shell-summed
        (vacuum-boundary) periodic potential; any per-box truncation shape
        would leave uncancelled partial-cell monopoles instead.
        """
        from repro.solvers.fmm.expansions import derivative_tensors, multi_index_set

        S = self.lattice_shells
        w2 = self.box_width(2)
        deltas = np.asarray(list(itertools.product(range(-3, 4), repeat=3)), dtype=np.int64)
        shifts = np.asarray(
            list(itertools.product(range(-S, S + 1), repeat=3)), dtype=np.int64
        )
        ncoef2 = multi_index_set(2 * self.p).ncoef
        # displacement vectors are shared between residue classes: evaluate
        # the derivative tensors once per unique vector, then index-sum
        side = 8 * S + 7  # d in [-(4S+3), 4S+3]
        lo = -(4 * S + 3)
        vecs = np.asarray(
            list(itertools.product(range(lo, lo + side), repeat=3)), dtype=np.int64
        )
        vec_keep = np.abs(vecs).max(axis=1) >= 2
        T_unique = np.zeros((vecs.shape[0], ncoef2))
        kept = np.flatnonzero(vec_keep)
        for start in range(0, kept.shape[0], 8192):
            sel = kept[start:start + 8192]
            T_unique[sel] = derivative_tensors(-vecs[sel].astype(np.float64) * w2, 2 * self.p)

        def vec_index(v: np.ndarray) -> np.ndarray:
            return ((v[:, 0] - lo) * side + (v[:, 1] - lo)) * side + (v[:, 2] - lo)

        K_lat = np.empty((deltas.shape[0], self.ncoef, self.ncoef))
        for di, delta in enumerate(deltas):
            d_all = delta[None, :] + 4 * shifts
            d_all = d_all[np.abs(d_all).max(axis=1) >= 2]
            Tsum = T_unique[vec_index(d_all)].sum(axis=0)
            K_lat[di] = self.expansion.m2l_matrix_from_tensors(Tsum)
        self._lattice_deltas = deltas
        self._lattice_K = K_lat

    # -- tree passes -------------------------------------------------------------------

    def leaf_moments(self, pos: np.ndarray, q: np.ndarray, leaf_idx: np.ndarray) -> np.ndarray:
        """P2M: accumulate particle moments into the dense leaf array."""
        centers = self.box_centers(self.depth, leaf_idx)
        rows = self.expansion.p2m_rows(pos - centers, q)
        M = np.zeros((self.nboxes_leaf, self.ncoef))
        np.add.at(M, leaf_idx, rows)
        return M

    def _children_linear(self, level: int) -> np.ndarray:
        """(nboxes_level, 8) linear child indices at ``level + 1``."""
        nside = 1 << level
        nchild = nside * 2
        lin = np.arange(nside ** 3, dtype=np.int64)
        cz = lin % nside
        cy = (lin // nside) % nside
        cx = lin // (nside * nside)
        out = np.empty((nside ** 3, 8), dtype=np.int64)
        for o, oct_ in enumerate(OCTANTS):
            out[:, o] = (
                (2 * cx + oct_[0]) * nchild + (2 * cy + oct_[1])
            ) * nchild + (2 * cz + oct_[2])
        return out

    def upward(self, M_leaf: np.ndarray, stats: FarFieldStats) -> List[Optional[np.ndarray]]:
        """M2M from leaves up to level 2; returns moments per level."""
        M: List[Optional[np.ndarray]] = [None] * (self.depth + 1)
        M[self.depth] = M_leaf
        for level in range(self.depth - 1, 1, -1):
            children = self._children_linear(level)
            Ml = np.zeros(((1 << level) ** 3, self.ncoef))
            for o in range(8):
                Ml += M[level + 1][children[:, o]] @ self._m2m[level][o].T
            M[level] = Ml
            stats.m2m_ops += Ml.shape[0] * 8
        return M

    def interactions(self, M: List[Optional[np.ndarray]], stats: FarFieldStats) -> List[Optional[np.ndarray]]:
        """M2L at every level; returns local coefficients per level."""
        L: List[Optional[np.ndarray]] = [None] * (self.depth + 1)
        for level in range(2, self.depth + 1):
            nside = 1 << level
            nboxes = nside ** 3
            Ll = np.zeros((nboxes, self.ncoef))
            Ml = M[level]
            if level == 2 and self.periodic:
                # lattice operator: in-cell displacements, no wrapping (the
                # images are inside the pre-summed kernels)
                lin = np.arange(nboxes, dtype=np.int64)
                cz = lin % nside
                cy = (lin // nside) % nside
                cx = lin // (nside * nside)
                for di, delta in enumerate(self._lattice_deltas):
                    sx = cx + delta[0]
                    sy = cy + delta[1]
                    sz = cz + delta[2]
                    inside = (
                        (sx >= 0) & (sx < nside)
                        & (sy >= 0) & (sy < nside)
                        & (sz >= 0) & (sz < nside)
                    )
                    if not inside.any():
                        continue
                    src = (sx[inside] * nside + sy[inside]) * nside + sz[inside]
                    Ll[inside] += Ml[src] @ self._lattice_K[di].T
                    stats.m2l_ops += int(inside.sum())
                L[level] = Ll
                continue
            K = self._m2l_by_level[level]
            lin = np.arange(nboxes, dtype=np.int64)
            cz = lin % nside
            cy = (lin // nside) % nside
            cx = lin // (nside * nside)
            parity_key = ((cx % 2) * 2 + (cy % 2)) * 2 + (cz % 2)
            tables = _parity_tables()
            for o, oct_ in enumerate(OCTANTS):
                targets = np.flatnonzero(parity_key == ((oct_[0] * 2 + oct_[1]) * 2 + oct_[2]))
                if targets.size == 0:
                    continue
                tx, ty, tz = cx[targets], cy[targets], cz[targets]
                for d in tables[tuple(oct_)]:
                    sx, sy, sz = tx + d[0], ty + d[1], tz + d[2]
                    if self.periodic:
                        sx, sy, sz = sx % nside, sy % nside, sz % nside
                        sel = slice(None)
                        tgt = targets
                    else:
                        inside = (
                            (sx >= 0) & (sx < nside)
                            & (sy >= 0) & (sy < nside)
                            & (sz >= 0) & (sz < nside)
                        )
                        if not inside.any():
                            continue
                        sel = inside
                        tgt = targets[inside]
                        sx, sy, sz = sx[sel], sy[sel], sz[sel]
                    src = (sx * nside + sy) * nside + sz
                    Kd = K[self._disp_position[tuple(d)]]
                    Ll[tgt] += Ml[src] @ Kd.T
                    stats.m2l_ops += tgt.shape[0]
            L[level] = Ll
        return L

    def downward(self, L: List[Optional[np.ndarray]], stats: FarFieldStats) -> np.ndarray:
        """L2L from level 2 down; returns the leaf local coefficients."""
        for level in range(2, self.depth):
            children = self._children_linear(level)
            for o in range(8):
                L[level + 1][children[:, o]] += L[level] @ self._l2l[level][o].T
            stats.l2l_ops += L[level].shape[0] * 8
        return L[self.depth]

    def far_field(
        self,
        pos: np.ndarray,
        q: np.ndarray,
        leaf_idx: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, FarFieldStats]:
        """Complete far-field evaluation for all particles.

        Returns ``(pot, field, stats)``.  ``leaf_idx`` must match ``pos``
        (see :func:`leaf_index_of_positions`).
        """
        stats = FarFieldStats(ncoef=self.ncoef)
        stats.p2m_particles = pos.shape[0]
        stats.l2p_particles = pos.shape[0]
        M_leaf = self.leaf_moments(pos, q, leaf_idx)
        M = self.upward(M_leaf, stats)
        L = self.interactions(M, stats)
        L_leaf = self.downward(L, stats)
        centers = self.box_centers(self.depth, leaf_idx)
        pot, field = self.expansion.l2p(L_leaf[leaf_idx], pos - centers)
        return pot, field, stats

    # -- near field -----------------------------------------------------------------------

    def morton_keys(self, pos: np.ndarray) -> np.ndarray:
        """Z-Morton leaf box numbers of positions (the FMM's sort keys)."""
        from repro.zorder.morton import morton_keys_of_positions

        return morton_keys_of_positions(
            pos, self.offset, self.box, self.depth, self.periodic
        )

    def linear_of_morton(self, keys: np.ndarray) -> np.ndarray:
        """Row-major leaf index of Morton box numbers."""
        from repro.zorder.morton import morton_decode3

        x, y, z = morton_decode3(keys)
        nside = self.nside_leaf
        return (x.astype(np.int64) * nside + y.astype(np.int64)) * nside + z.astype(np.int64)

    def near_field_morton(
        self,
        tpos: np.ndarray,
        t_keys_sorted: np.ndarray,
        spos: np.ndarray,
        sq: np.ndarray,
        s_keys_sorted: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Near field of targets against sources grouped by Morton leaf box.

        ``t_keys_sorted``/``s_keys_sorted`` are ascending Morton box numbers
        (the order the parallel sort produces); positions/charges are in
        that same order.  Periodic systems use minimum-image displacements
        (valid because ``depth >= 3``).  Used both by the sequential
        evaluation (targets == sources == everything) and by each rank of
        the parallel solver (targets = owned, sources = owned + halo).

        Returns ``(pot, field, pair_count)`` aligned with the targets.
        """
        from repro.zorder.morton import morton_decode3, morton_encode3

        nside = self.nside_leaf
        # unique populated target boxes and their segments
        t_boxes, t_first = np.unique(t_keys_sorted, return_index=True)
        t_last = np.concatenate((t_first[1:], [t_keys_sorted.shape[0]]))
        tx, ty, tz = (c.astype(np.int64) for c in morton_decode3(t_boxes))
        pot = np.zeros(tpos.shape[0])
        field = np.zeros((tpos.shape[0], 3))
        pair_count = 0
        box = self.box if self.periodic else None
        for d in itertools.product((-1, 0, 1), repeat=3):
            sx, sy, sz = tx + d[0], ty + d[1], tz + d[2]
            if self.periodic:
                sx, sy, sz = sx % nside, sy % nside, sz % nside
                mask = np.ones(t_boxes.shape[0], dtype=bool)
            else:
                mask = (
                    (sx >= 0) & (sx < nside)
                    & (sy >= 0) & (sy < nside)
                    & (sz >= 0) & (sz < nside)
                )
                if not mask.any():
                    continue
                sx, sy, sz = sx[mask], sy[mask], sz[mask]
            src_keys = morton_encode3(sx, sy, sz)
            s_start = np.searchsorted(s_keys_sorted, src_keys, side="left")
            s_end = np.searchsorted(s_keys_sorted, src_keys, side="right")
            ti, si = ragged_cross(t_first[mask], t_last[mask], s_start, s_end)
            if ti.size == 0:
                continue
            p, f, c = coulomb_pairs(tpos, spos, sq, ti, si, box=box)
            pot += p
            field += f
            pair_count += c
        return pot, field, pair_count

    def evaluate(self, pos: np.ndarray, q: np.ndarray) -> Tuple[np.ndarray, np.ndarray, FarFieldStats]:
        """Sequential full FMM evaluation (far + near) in input order.

        The reference entry point used by tests and by single-rank runs.
        """
        pos = np.asarray(pos, dtype=np.float64)
        q = np.asarray(q, dtype=np.float64)
        keys = self.morton_keys(pos)
        order = np.argsort(keys, kind="stable")
        inv = np.empty_like(order)
        inv[order] = np.arange(order.shape[0])
        spos = pos[order]
        sq = q[order]
        skeys = keys[order]
        pot_far, field_far, stats = self.far_field(spos, sq, self.linear_of_morton(skeys))
        pot_near, field_near, pairs = self.near_field_morton(spos, skeys, spos, sq, skeys)
        stats.near_pairs = pairs
        pot = (pot_far + pot_near)[inv]
        field = (field_far + field_near)[inv]
        return pot, field, stats
