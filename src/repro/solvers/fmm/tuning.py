"""Automatic FMM parameter selection (the ``fcs_tune`` step).

The paper's FMM "optimizes the subdivision into boxes and the expansion
length in order to achieve a given accuracy for the results with minimum
runtime" [8].  This module implements the same two decisions:

* **expansion order** from the requested accuracy: the M2L error of the
  interaction-list geometry decays like ``rho^(p+1)`` with separation ratio
  ``rho = sqrt(3)/2 / 2 ~ 0.43``; the mapping below is calibrated against
  the Ewald reference in the test suite.
* **tree depth** balancing near- and far-field work: with an average leaf
  occupancy ``b``, near-field cost per particle is ``~27 b`` pair kernels
  and far-field cost per particle is ``~189 ncoef^2 / b`` expansion terms,
  minimized at ``b* = sqrt(189 ncoef^2 t_exp / (27 t_pair))``.
"""

from __future__ import annotations

import math

from repro import kernels
from repro.solvers.fmm.expansions import multi_index_set

__all__ = [
    "choose_order",
    "choose_depth",
    "optimal_occupancy",
    "predict_cost",
    "plan_parameters",
    "TuningPlan",
]

#: M2L convergence ratio of the classical one-box-separation geometry
#: (box half-diagonal over minimum interaction distance)
RHO = math.sqrt(3.0) / 4.0


def choose_order(accuracy: float) -> int:
    """Expansion order for a target relative potential accuracy.

    The worst-case bound ``rho^(p+1)`` is very pessimistic for rms errors
    of homogeneous systems; the mapping below is calibrated against the
    exact Ewald/direct references in the test suite (p=5 reaches ~1e-3 rms
    potential error).
    """
    if accuracy <= 0:
        raise ValueError(f"accuracy must be positive, got {accuracy}")
    p = int(math.ceil(1.2 * math.log10(1.0 / accuracy))) + 1
    return max(2, min(p, 10))


def optimal_occupancy(p: int) -> float:
    """Leaf occupancy balancing near- and far-field work for order ``p``."""
    ncoef = multi_index_set(p).ncoef
    return math.sqrt(
        189.0 * ncoef * ncoef * kernels.EXPANSION_TERM / (27.0 * kernels.PAIR_INTERACTION)
    )


def choose_depth(
    n: int,
    p: int,
    periodic: bool,
    max_depth: int = 6,
) -> int:
    """Tree depth giving near-optimal leaf occupancy for ``n`` particles."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    b = optimal_occupancy(p)
    depth = round(math.log(max(n / b, 1.0), 8.0))
    lo = 3 if periodic else 2
    return max(lo, min(int(depth), max_depth))


def predict_cost(n: int, p: int, depth: int, periodic: bool) -> float:
    """Predicted per-run compute seconds of the (p, depth) configuration.

    The model the paper's FMM tuning minimizes [8]: near-field pair work at
    the leaf occupancy plus the per-level far-field operator work.
    """
    ncoef = multi_index_set(p).ncoef
    nboxes_leaf = 8 ** depth
    occupancy = n / nboxes_leaf
    near = n * 27.0 * max(occupancy, 1.0) * kernels.PAIR_INTERACTION
    far = 2.0 * n * ncoef * kernels.EXPANSION_TERM  # P2M + L2P
    for level in range(2, depth + 1):
        nb = 8 ** level
        lists = 343 if (periodic and level == 2) else 189
        far += nb * lists * ncoef * ncoef * kernels.EXPANSION_TERM
        if level < depth:
            far += nb * 8 * ncoef * ncoef * kernels.EXPANSION_TERM * 2.0
    keys = n * kernels.KEY_GENERATION
    return near + far + keys


def plan_parameters(
    n: int,
    accuracy: float,
    periodic: bool,
    max_depth: int = 6,
) -> "TuningPlan":
    """Full model-driven tuning: pick (order, depth) minimizing the
    predicted runtime among all configurations meeting the accuracy.

    This is the paper's tuning contract — "the subdivision into boxes and
    the expansion length [are optimized] in order to achieve a given
    accuracy for the results with minimum runtime" — made explicit: the
    accuracy fixes the minimum order, and every admissible depth is costed
    with :func:`predict_cost`.
    """
    p = choose_order(accuracy)
    lo = 3 if periodic else 2
    candidates = []
    for depth in range(lo, max_depth + 1):
        candidates.append((predict_cost(n, p, depth, periodic), depth))
    cost, depth = min(candidates)
    return TuningPlan(order=p, depth=depth, predicted_cost=cost, candidates=candidates)


class TuningPlan:
    """Result of :func:`plan_parameters` (order, depth, predicted cost)."""

    def __init__(self, order: int, depth: int, predicted_cost: float, candidates) -> None:
        self.order = order
        self.depth = depth
        self.predicted_cost = predicted_cost
        #: all evaluated (cost, depth) pairs, for introspection/ablation
        self.candidates = sorted(candidates, key=lambda c: c[1])

    def __repr__(self) -> str:
        return (
            f"TuningPlan(order={self.order}, depth={self.depth}, "
            f"predicted_cost={self.predicted_cost:.3e}s)"
        )
