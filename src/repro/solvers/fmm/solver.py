"""Parallel FMM solver: Z-curve decomposition by parallel sorting.

Execution of one ``fcs_run`` (Sect. II-B / III of the paper):

1. **keygen** — every rank computes Z-Morton box numbers for its local
   particles.
2. **sort** — the particles (positions, charges and the consecutive initial
   numbering ``origloc``) are parallel-sorted by box number: the
   partition-based method [12] (collective all-to-all) for disordered
   input, or — when the application's maximum-movement bound says the
   particles are almost sorted — the merge-based method [15] on Batcher's
   network (point-to-point only).  Afterwards each rank owns a contiguous
   segment of the Z-order curve.
3. **halo** — copies of particles in boxes adjacent to other ranks'
   boxes are exchanged (neighborhood communication) for the near field.
4. **near/far** — direct neighbor-box sums plus the multipole tree passes.
5. method A: **restore** — potentials and fields are sent back to each
   particle's initial process and position (fine-grained redistribution +
   permutation), leaving the application's order untouched; or
   method B: the changed order is returned (if capacities allow) and
   **resort indices** are created by inverting the initial numbering — the
   additional communication step of Sect. III-B.

Far-field parallelization note: the data plane evaluates the global tree
passes once and the cost model charges each rank its share (moment
replication via an allgather-style exchange plus its owned fraction of the
per-level operator work).  This replaces a locally-essential-tree
construction; DESIGN.md §5 records the simplification.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.core.fine_grained import fine_grained_redistribute
from repro.core.movement import fmm_prefers_merge_sort
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import initial_numbering, invert_indices
from repro.core.restore import restore_results
from repro.simmpi.collectives import allgatherv, allreduce
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver
from repro.solvers.fmm.tree import FMMTree
from repro.solvers.fmm.tuning import choose_depth, choose_order, plan_parameters
from repro.sorting.merge_sort import merge_exchange_sort
from repro.sorting.partition_sort import partition_sort

__all__ = ["FMMSolver"]


class FMMSolver(Solver):
    """Fast Multipole Method with Z-order-curve domain decomposition."""

    name = "fmm"

    #: the Z-curve is split at particle granularity, so ownership can be
    #: repartitioned freely — the FMM is the solver that rebalances
    supports_rebalance = True

    def __init__(
        self,
        machine: Machine,
        order: Optional[int] = None,
        depth: Optional[int] = None,
        lattice_shells: int = 3,
        boundary: str = "tinfoil",
        compute: str = "full",
        work_model: str = "uniform",
    ) -> None:
        super().__init__(machine)
        if boundary not in ("tinfoil", "vacuum"):
            raise ValueError(f"boundary must be 'tinfoil' or 'vacuum', got {boundary!r}")
        if compute not in ("full", "skip"):
            raise ValueError(f"compute must be 'full' or 'skip', got {compute!r}")
        if work_model not in ("uniform", "density"):
            raise ValueError(
                f"work_model must be 'uniform' or 'density', got {work_model!r}"
            )
        self._order_override = order
        self._depth_override = depth
        self.lattice_shells = int(lattice_shells)
        self.boundary = boundary
        #: ``"skip"`` omits the force arithmetic (results are zeros) while
        #: keeping every redistribution operation data-real and charging the
        #: solver compute from analytic workload estimates — used by the
        #: long-running scaling benchmarks (DESIGN.md §5)
        self.compute_mode = compute
        #: near-field workload estimate used only by the skip-compute mode:
        #: ``"uniform"`` assumes homogeneous box occupancy (historical
        #: behavior, exact for the silica melt); ``"density"`` derives each
        #: rank's pair count from its actual leaf-box occupancies, which is
        #: what lets clustered systems show their imbalance without paying
        #: full force arithmetic.  Full-compute runs always count real pairs
        #: and ignore this knob.
        self.work_model = work_model
        self.tree: Optional[FMMTree] = None

    # -- solver-specific setter functions (fcs_fmm_set_*) -----------------------

    def set_order(self, order: Optional[int]) -> None:
        """Fix the expansion order (None = choose from the accuracy)."""
        if order is not None and order < 2:
            raise ValueError(f"order must be >= 2, got {order}")
        self._order_override = order
        self._tuned = False

    def set_depth(self, depth: Optional[int]) -> None:
        """Fix the tree depth (None = choose from the particle count)."""
        self._depth_override = depth
        self._tuned = False

    # -- tuning ----------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Choose expansion order and tree depth, build the operators.

        Without overrides, the model-driven planner picks the (order,
        depth) pair meeting the accuracy at minimum predicted runtime [8].
        """
        self.require_common()
        n = particles.total()
        if self._order_override is None and self._depth_override is None:
            plan = plan_parameters(n, accuracy, self.periodic)
            p, depth = plan.order, plan.depth
            self.last_plan = plan
        else:
            p = self._order_override or choose_order(accuracy)
            depth = self._depth_override or choose_depth(n, p, self.periodic)
            self.last_plan = None
        self.tree = FMMTree(
            depth=depth,
            p=p,
            box=self.box,
            offset=self.offset,
            periodic=self.periodic,
            lattice_shells=self.lattice_shells,
            build_operators=self.compute_mode == "full",
        )
        # the tuning step is a small collective (parameter agreement) plus
        # local operator construction
        self.machine.barrier(phase="tune")
        self.machine.compute(
            kernels.EXPANSION_TERM * (self.tree.ncoef ** 2) * 400.0, phase="tune"
        )
        self._tuned = True

    # -- helpers ----------------------------------------------------------------

    def _make_blocks(self, particles: ParticleSet) -> List[ColumnBlock]:
        """Per-rank blocks (key, pos, q, origloc) with keygen cost."""
        numbering = initial_numbering(particles.counts())
        blocks: List[ColumnBlock] = []
        cost = np.zeros(self.machine.nprocs)
        for r in range(self.machine.nprocs):
            keys = self.tree.morton_keys(particles.pos[r])
            blocks.append(
                ColumnBlock(
                    key=keys,
                    pos=particles.pos[r].copy(),
                    q=particles.q[r].copy(),
                    origloc=numbering[r],
                )
            )
            cost[r] = kernels.KEY_GENERATION * keys.shape[0]
        self.machine.compute(cost, phase="keygen")
        return blocks

    def _attach_weights(self, blocks: Sequence[ColumnBlock]) -> None:
        """Attach a per-particle ``weight`` column: modeled execution cost.

        One allgather of the local key arrays (phase ``"balance"``) gives
        every rank the global box histogram.  A particle's weight is its
        modeled per-particle execution cost — the linked-cell near-field
        pair estimate (``27 * occupancy`` interactions, the global-histogram
        version of :func:`repro.core.balance.occupancy_weights`) plus the
        per-particle far-field share (P2M/L2P plus an even split of the
        tree-pass operator cost, which :meth:`_charge_far_field` charges
        proportionally to owned counts).  Balancing the weight column
        therefore balances the modeled near+far compute, not just the pair
        sums: a near-only weight would starve dense-box ranks of particles
        and pile count-proportional far-field work onto the sparse ranks.
        """
        machine = self.machine
        gathered = allgatherv(machine, [b["key"] for b in blocks], "balance")
        all_keys = gathered[0]
        n_total = int(all_keys.shape[0])
        uniq, counts = np.unique(all_keys, return_counts=True)
        far_stats = self._estimate_far_stats(n_total)
        op_cost = (
            (far_stats.m2m_ops + far_stats.l2l_ops + far_stats.m2l_ops)
            * far_stats.ncoef
            * far_stats.ncoef
        ) * kernels.EXPANSION_TERM
        far_per_particle = far_stats.ncoef * kernels.EXPANSION_TERM * 2.0
        if n_total:
            far_per_particle += op_cost / n_total
        cost = np.zeros(machine.nprocs)
        histogram_cost = kernels.KEY_SORT_STEP * n_total * max(
            1.0, float(np.log2(max(n_total, 2)))
        )
        for r, b in enumerate(blocks):
            idx = np.searchsorted(uniq, b["key"])
            near = kernels.PAIR_INTERACTION * 27.0 * counts[idx].astype(np.float64)
            b["weight"] = near + far_per_particle
            cost[r] = histogram_cost
        machine.compute(cost, phase="balance")

    def _sort(
        self,
        blocks: Sequence[ColumnBlock],
        max_move: Optional[float],
        *,
        rebalance: bool = False,
    ) -> Tuple[List[ColumnBlock], str]:
        """Parallel sort by box number, picking the strategy per Sect. III-B.

        ``rebalance=True`` forces the partition-based method with weighted
        split bounds (the ``weight`` column must be attached): a rebalance
        moves ownership anyway, so the merge network's almost-sorted
        shortcut does not apply.
        """
        if rebalance:
            sorted_blocks = partition_sort(
                self.machine, blocks, "key", phase="sort", balance_key="weight"
            )
            return sorted_blocks, "partition+balance"
        use_merge = (
            max_move is not None
            and fmm_prefers_merge_sort(self.box, self.machine.nprocs, max_move)
        )
        if use_merge:
            sorted_blocks, ok = merge_exchange_sort(
                self.machine, blocks, "key", phase="sort"
            )
            if ok:
                return sorted_blocks, "merge"
            # the block network only guarantees equal-size blocks; on the
            # rare verification failure, re-partition the (almost sorted)
            # result — cheap, since nearly nothing moves
            sorted_blocks = partition_sort(
                self.machine, sorted_blocks, "key", phase="sort", presorted=True
            )
            return sorted_blocks, "merge+fallback"
        sorted_blocks = partition_sort(self.machine, blocks, "key", phase="sort")
        return sorted_blocks, "partition"

    def _ownership(self, blocks: Sequence[ColumnBlock]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Allgather per-rank (min key, max key); empty ranks are skipped.

        Returns ``(rank_ids, min_keys, max_keys)`` of the non-empty ranks in
        rank order (which is also key order after the sort).
        """
        P = self.machine.nprocs
        mins = np.zeros(P, dtype=np.float64)
        maxs = np.zeros(P, dtype=np.float64)
        counts = np.zeros(P, dtype=np.float64)
        for r, b in enumerate(blocks):
            counts[r] = b.n
            if b.n:
                mins[r] = b["key"][0]
                maxs[r] = b["key"][-1]
        # three scalar allgathers (the sort already synchronized everyone)
        from repro.simmpi.collectives import allgather_scalars

        allgather_scalars(self.machine, mins, phase="halo")
        allgather_scalars(self.machine, maxs, phase="halo")
        nonempty = np.flatnonzero(counts > 0)
        min_keys = np.asarray([blocks[r]["key"][0] for r in nonempty], dtype=np.uint64)
        max_keys = np.asarray([blocks[r]["key"][-1] for r in nonempty], dtype=np.uint64)
        return nonempty, min_keys, max_keys

    def _owners_of_keys(
        self,
        keys: np.ndarray,
        rank_ids: np.ndarray,
        min_keys: np.ndarray,
        max_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All (key_index, owner_rank) pairs for box keys.

        A box can straddle consecutive ranks (the sort splits at particle
        granularity), so a key may have several owners.
        """
        lo = np.searchsorted(max_keys, keys, side="left")
        hi = np.searchsorted(min_keys, keys, side="right")
        counts = np.maximum(hi - lo, 0)
        ki = np.repeat(np.arange(keys.shape[0]), counts)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(int(counts.sum())) - offsets[np.repeat(np.arange(keys.shape[0]), counts)]
        owners = rank_ids[lo[ki] + within]
        return ki, owners

    def _halo_exchange(
        self,
        blocks: Sequence[ColumnBlock],
        ownership: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> List[ColumnBlock]:
        """Send boundary-box particle copies to ranks owning adjacent boxes."""
        from repro.zorder.morton import morton_decode3, morton_encode3
        import itertools

        rank_ids, min_keys, max_keys = ownership
        P = self.machine.nprocs
        nside = self.tree.nside_leaf
        send_elems: List[np.ndarray] = []
        send_targets: List[np.ndarray] = []
        for r, block in enumerate(blocks):
            if block.n == 0:
                send_elems.append(np.empty(0, dtype=np.int64))
                send_targets.append(np.empty(0, dtype=np.int64))
                continue
            keys = block["key"]
            boxes, first = np.unique(keys, return_index=True)
            last = np.concatenate((first[1:], [keys.shape[0]]))
            bx, by, bz = (c.astype(np.int64) for c in morton_decode3(boxes))
            dest_box: List[np.ndarray] = []
            dest_rank: List[np.ndarray] = []
            for d in itertools.product((-1, 0, 1), repeat=3):
                if d == (0, 0, 0):
                    continue
                nx, ny, nz = bx + d[0], by + d[1], bz + d[2]
                if self.periodic:
                    nx, ny, nz = nx % nside, ny % nside, nz % nside
                    mask = np.ones(boxes.shape[0], dtype=bool)
                else:
                    mask = (
                        (nx >= 0) & (nx < nside)
                        & (ny >= 0) & (ny < nside)
                        & (nz >= 0) & (nz < nside)
                    )
                    if not mask.any():
                        continue
                    nx, ny, nz = nx[mask], ny[mask], nz[mask]
                nkeys = morton_encode3(nx, ny, nz)
                ki, owners = self._owners_of_keys(nkeys, rank_ids, min_keys, max_keys)
                box_idx = np.flatnonzero(mask)[ki]
                keep = owners != r
                dest_box.append(box_idx[keep])
                dest_rank.append(owners[keep])
            if dest_box:
                db = np.concatenate(dest_box)
                dr = np.concatenate(dest_rank)
                pairs = np.unique(np.stack([db, dr], axis=1), axis=0)
                db, dr = pairs[:, 0], pairs[:, 1]
                seg_len = (last - first)[db]
                elems = np.concatenate(
                    [np.arange(first[b], last[b]) for b in db]
                ) if db.size else np.empty(0, dtype=np.int64)
                targets = np.repeat(dr, seg_len)
            else:
                elems = np.empty(0, dtype=np.int64)
                targets = np.empty(0, dtype=np.int64)
            send_elems.append(elems)
            send_targets.append(targets)

        halo_in = [b.drop("origloc") for b in blocks]

        def dist(rank: int, block: ColumnBlock):
            return send_elems[rank], send_targets[rank]

        return fine_grained_redistribute(
            self.machine, halo_in, dist, phase="halo", comm="neighborhood"
        )

    def _estimate_far_stats(self, n_total: int):
        """Analytic far-field workload for the skip-compute mode."""
        from repro.solvers.fmm.tree import FarFieldStats

        stats = FarFieldStats(ncoef=self.tree.ncoef)
        stats.p2m_particles = n_total
        stats.l2p_particles = n_total
        for level in range(2, self.tree.depth + 1):
            nboxes = (1 << level) ** 3
            if level == 2 and self.periodic:
                stats.m2l_ops += nboxes * 343
            else:
                stats.m2l_ops += nboxes * 189
            if level < self.tree.depth:
                stats.m2m_ops += nboxes * 8
                stats.l2l_ops += nboxes * 8
        return stats

    def _charge_far_field(self, stats, owned_counts: np.ndarray, nonzero_leaves: int) -> None:
        """Charge the far-field comm (moment replication) and compute."""
        machine = self.machine
        P = machine.nprocs
        model = machine.model
        ncoef = stats.ncoef
        # moment replication: allgather-style exchange of nonzero leaf moments
        nbytes = float(nonzero_leaves * ncoef * 8)
        machine.synchronize()
        t = model.tree_collective_time(P, 0.0, machine.topology.diameter())
        t += nbytes / model.bandwidth if P > 1 else 0.0
        machine.advance(t, "far", messages=2 * max(0, P - 1), nbytes=int(nbytes) * (P - 1))
        # compute: per-particle work by local counts, per-box work by share
        total = float(owned_counts.sum())
        share = owned_counts / total if total else np.zeros(P)
        op_cost = (
            (stats.m2m_ops + stats.l2l_ops + stats.m2l_ops) * ncoef * ncoef
        ) * kernels.EXPANSION_TERM
        per_particle = (
            owned_counts * ncoef * kernels.EXPANSION_TERM * 2.0
        )  # P2M + L2P
        machine.compute(per_particle + share * op_cost, phase="far")

    # -- run -----------------------------------------------------------------------

    def run(
        self,
        particles: ParticleSet,
        *,
        resort: bool = False,
        max_move: Optional[float] = None,
    ) -> RunReport:
        self.require_common()
        if self.tree is None:
            raise RuntimeError("fcs_tune must run before fcs_run")
        machine = self.machine
        P = machine.nprocs
        old_counts = particles.counts()

        rebalance = self._rebalance_pending and self._load_balance != "off" and P > 1
        self._rebalance_pending = False
        blocks = self._make_blocks(particles)
        if rebalance:
            self._attach_weights(blocks)
            blocks, strategy = self._sort(blocks, max_move, rebalance=True)
            blocks = [b.drop("weight") for b in blocks]
            machine.trace.bump("balance.rebalances")
            if machine.obs is not None:
                machine.obs.metrics.counter("balance.rebalances").inc()
                machine.obs.mark("balance.rebalance", op="balance")
        else:
            blocks, strategy = self._sort(blocks, max_move)
        new_counts = np.asarray([b.n for b in blocks], dtype=np.int64)

        ownership = self._ownership(blocks)
        halo = self._halo_exchange(blocks, ownership)

        # --- near field: per rank, owned targets vs owned + halo sources ----
        pots: List[np.ndarray] = []
        fields: List[np.ndarray] = []
        near_cost = np.zeros(P)
        for r in range(P):
            own = blocks[r]
            if own.n == 0:
                pots.append(np.zeros(0))
                fields.append(np.zeros((0, 3)))
                continue
            if self.compute_mode == "skip":
                pots.append(np.zeros(own.n))
                fields.append(np.zeros((own.n, 3)))
                if self.work_model == "density":
                    # pair estimate from actual leaf occupancy: a box of k
                    # particles contributes ~27 k^2 neighborhood pairs (the
                    # sort makes boxes rank-contiguous, so local counts are
                    # the global ones up to boundary boxes)
                    _, box_counts = np.unique(own["key"], return_counts=True)
                    near_cost[r] = kernels.PAIR_INTERACTION * 27.0 * float(
                        np.square(box_counts.astype(np.float64)).sum()
                    )
                    continue
                # analytic pair estimate: homogeneous occupancy over the
                # populated neighborhood
                occupancy = float(sum(new_counts)) / self.tree.nboxes_leaf
                near_cost[r] = kernels.PAIR_INTERACTION * own.n * 27.0 * max(occupancy, 1.0)
                continue
            if halo[r].n:
                merged = ColumnBlock.concat([own.drop("origloc"), halo[r]])
                order = np.argsort(merged["key"], kind="stable")
                merged = merged.take(order)
            else:
                merged = own
            pot_n, field_n, pairs = self.tree.near_field_morton(
                own["pos"], own["key"], merged["pos"], merged["q"], merged["key"]
            )
            pots.append(pot_n)
            fields.append(field_n)
            near_cost[r] = kernels.PAIR_INTERACTION * pairs
        machine.compute(near_cost, phase="near")

        # --- far field: global data plane, per-rank cost model --------------
        if self.compute_mode == "skip":
            n_total = int(new_counts.sum())
            stats = self._estimate_far_stats(n_total)
            self._charge_far_field(
                stats,
                new_counts.astype(np.float64),
                min(self.tree.nboxes_leaf, n_total),
            )
        else:
            gpos = np.concatenate([b["pos"] for b in blocks])
            gq = np.concatenate([b["q"] for b in blocks])
            gkeys = np.concatenate([b["key"] for b in blocks])
            linear = self.tree.linear_of_morton(gkeys)
            pot_far, field_far, stats = self.tree.far_field(gpos, gq, linear)
            self._charge_far_field(
                stats, new_counts.astype(np.float64), int(np.unique(linear).shape[0])
            )
            offsets = np.concatenate(([0], np.cumsum(new_counts)))
            for r in range(P):
                sl = slice(offsets[r], offsets[r + 1])
                pots[r] = pots[r] + pot_far[sl]
                fields[r] = fields[r] + field_far[sl]

        # --- boundary condition ----------------------------------------------
        if self.compute_mode != "skip" and self.periodic and self.boundary == "tinfoil":
            volume = float(np.prod(self.box))
            local_dipole = [
                (blocks[r]["q"][:, None] * blocks[r]["pos"]).sum(axis=0) for r in range(P)
            ]
            dipole = np.asarray(allreduce(machine, local_dipole, op="sum", phase="far"))
            coef = 4.0 * np.pi / (3.0 * volume)
            for r in range(P):
                pots[r] = pots[r] - coef * (blocks[r]["pos"] @ dipole)
                fields[r] = fields[r] + coef * dipole

        # --- return path: method A restore or method B resort ----------------
        if resort and particles.fits(new_counts):
            for r in range(P):
                particles.replace(r, blocks[r]["pos"], blocks[r]["q"], pots[r], fields[r])
            resort_indices = invert_indices(
                machine,
                [b["origloc"] for b in blocks],
                [int(c) for c in old_counts],
                phase="resort_index",
                comm="alltoall",
            )
            return RunReport(
                changed=True,
                resort_indices=resort_indices,
                old_counts=old_counts,
                new_counts=new_counts,
                strategy=strategy,
                comm="alltoall",
                rank_work=near_cost,
            )

        restore_results(
            machine,
            [b["origloc"] for b in blocks],
            pots,
            fields,
            particles,
            [int(c) for c in old_counts],
            phase="restore",
        )
        return RunReport(
            changed=False,
            old_counts=old_counts,
            new_counts=old_counts,
            strategy=strategy,
            comm="alltoall",
            rank_work=near_cost,
        )
