"""Solver interface shared by FMM, P2NFFT and the direct solver.

A solver is created for a :class:`~repro.simmpi.machine.Machine`, configured
with the particle-system properties (``set_common``), optionally tuned, and
then executed repeatedly on a :class:`~repro.core.particles.ParticleSet`.

The redistribution contract (the heart of the paper) is expressed through
:class:`RunReport`:

* method **A** (``resort=False``): the solver must leave the particle set in
  its original order and distribution; ``report.changed`` is ``False``.
* method **B** (``resort=True``): the solver leaves the particle set in its
  own (changed) order and distribution **iff** every rank's new particle
  count fits the application's local array capacity; it then provides
  ``report.resort_indices`` (per-original-rank packed target locations) so
  the application can redistribute additional particle data.  If capacity
  is exceeded on any rank, the solver falls back to restoring the original
  distribution (``report.changed`` is ``False``), exactly as Sect. III-B
  specifies.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.core.particles import ParticleSet
from repro.simmpi.machine import Machine

__all__ = ["COMM_KINDS", "RunReport", "Solver"]

#: the structured communication strategies a solver can report for its
#: redistribution exchanges (mirrored by :data:`repro.core.plan.COMM_KINDS`)
COMM_KINDS = ("alltoall", "neighborhood")


@dataclasses.dataclass
class RunReport:
    """Outcome of one solver execution (one ``fcs_run``)."""

    #: True iff the particle order/distribution returned to the application
    #: is the solver-specific (changed) one
    changed: bool
    #: per-original-rank resort indices (packed target rank/position), only
    #: available when ``changed`` is True
    resort_indices: Optional[List[np.ndarray]] = None
    #: per-original-rank particle counts before the run (resort input shape)
    old_counts: Optional[np.ndarray] = None
    #: per-rank particle counts after the run
    new_counts: Optional[np.ndarray] = None
    #: which sorting/communication strategy the solver picked (free-form,
    #: for display/diagnostics only — never parse this; use :attr:`comm`)
    strategy: str = ""
    #: structured communication strategy for any follow-up redistribution of
    #: application data: ``"alltoall"`` (general collective) or
    #: ``"neighborhood"`` (known bounded-distance peers, Sect. III-B).
    #: Every solver sets this explicitly; the resort engine dispatches on it
    #: instead of sniffing the :attr:`strategy` string.
    comm: str = "alltoall"

    #: per-rank nominal near-field compute seconds of this run (the work
    #: distribution the load-balancing subsystem equalizes); ``None`` when
    #: the solver does not report it
    rank_work: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.comm not in COMM_KINDS:
            raise ValueError(
                f"RunReport.comm must be one of {COMM_KINDS}, got {self.comm!r}"
            )


class Solver:
    """Abstract solver base; subclasses implement :meth:`tune` and :meth:`run`."""

    #: registry name ("fmm", "p2nfft", "direct")
    name: str = "abstract"

    #: True iff the solver can repartition particle ownership to equalize
    #: work (weighted partition sort).  Grid-owned solvers (P2NFFT) and
    #: replicated solvers (direct, Ewald) cannot: their decomposition is
    #: fixed by the mesh / by replication, so :meth:`request_rebalance` is
    #: accepted but has no effect.
    supports_rebalance: bool = False

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.box: Optional[np.ndarray] = None
        self.offset: Optional[np.ndarray] = None
        self.periodic: bool = True
        self._tuned = False
        self._load_balance = "off"
        self._rebalance_pending = False

    # -- configuration ---------------------------------------------------------

    def set_common(
        self,
        *,
        box: Sequence[float],
        offset: Sequence[float] = (0.0, 0.0, 0.0),
        periodic: bool = True,
    ) -> None:
        """Set the particle-system properties (``fcs_set_common``).

        ``box`` holds the edge lengths of the axis-aligned system box (the
        general interface takes three base vectors; only orthorhombic boxes
        are supported here).  All arguments are keyword-only (API v2): a
        bare positional 3-vector after ``box`` cannot be told apart from a
        box base-vector matrix at the call site, and a positional boolean
        is meaningless to a reader — so the whole call is spelled out.
        """
        self.box = np.asarray(box, dtype=np.float64)
        self.offset = np.asarray(offset, dtype=np.float64)
        if self.box.shape != (3,) or self.offset.shape != (3,):
            raise ValueError("box and offset must be 3-vectors")
        if not np.all(np.isfinite(self.box)) or not np.all(np.isfinite(self.offset)):
            raise ValueError(
                f"box and offset must be finite, got box={self.box}, "
                f"offset={self.offset}"
            )
        if np.any(self.box <= 0):
            raise ValueError(f"box edges must be positive, got {self.box}")
        self.periodic = bool(periodic)
        self._tuned = False

    def require_common(self) -> None:
        if self.box is None:
            raise RuntimeError("set_common must be called before tune/run")

    # -- load balancing ----------------------------------------------------------

    def set_load_balance(self, mode: str) -> None:
        """Select the load-balance mode (``"off" | "static" | "dynamic"``).

        ``"static"`` schedules exactly one weighted rebalance, consumed by
        the next :meth:`run`; ``"dynamic"`` leaves triggering to the caller
        (an :class:`~repro.core.balance.ImbalanceMonitor`) through
        :meth:`request_rebalance`.  Ignored (mode recorded, never acted on)
        by solvers with ``supports_rebalance = False``.
        """
        from repro.core.balance import LOAD_BALANCE_MODES

        if mode not in LOAD_BALANCE_MODES:
            raise ValueError(
                f"load_balance must be one of {LOAD_BALANCE_MODES}, got {mode!r}"
            )
        self._load_balance = mode
        self._rebalance_pending = mode == "static" and self.supports_rebalance

    def request_rebalance(self) -> None:
        """Schedule a weighted rebalance for the next :meth:`run` (dynamic
        mode); a no-op on solvers that cannot repartition ownership."""
        if self.supports_rebalance and self._load_balance != "off":
            self._rebalance_pending = True

    # -- execution ---------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Determine solver-specific parameters from the current particle
        positions and charges (``fcs_tune``).  Results remain valid as long
        as the positions do not change too much."""
        raise NotImplementedError

    def run(
        self,
        particles: ParticleSet,
        *,
        resort: bool = False,
        max_move: Optional[float] = None,
    ) -> RunReport:
        """Compute potentials and fields for the current particles
        (``fcs_run``), writing them into ``particles.pot``/``particles.field``.

        ``resort=True`` requests method B; ``max_move`` passes the
        application's bound on the maximum particle movement since the last
        run (enables the limited-movement strategies of Sect. III-B).
        """
        raise NotImplementedError

    def destroy(self) -> None:
        """Release solver resources (``fcs_destroy``)."""
