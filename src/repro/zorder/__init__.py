"""Z-order (Morton) space-filling curves.

The FMM solver numbers the boxes of its recursive subdivision according to a
Z-Morton ordering and sorts all particles by box number, which induces the
Z-curve-segment domain decomposition of Fig. 2 (left) in the paper.
"""

from repro.zorder.morton import (
    morton_decode2,
    morton_decode3,
    morton_encode2,
    morton_encode3,
    morton_keys_of_positions,
    MAX_BITS_2D,
    MAX_BITS_3D,
)

__all__ = [
    "MAX_BITS_2D",
    "MAX_BITS_3D",
    "morton_decode2",
    "morton_decode3",
    "morton_encode2",
    "morton_encode3",
    "morton_keys_of_positions",
]
