"""Vectorised Morton (Z-order) encoding and decoding.

Keys interleave the bits of 2-D or 3-D integer cell coordinates so that
sorting by key traverses the cells along the Z-order curve [Samet 1990].
All functions are fully vectorised over NumPy arrays of ``uint64``.

Supported ranges: 32 bits per coordinate in 2-D, 21 bits per coordinate in
3-D (both fit a single ``uint64`` key — the same layout ScaFaCoS uses for
its box numbers).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_BITS_2D",
    "MAX_BITS_3D",
    "morton_encode2",
    "morton_decode2",
    "morton_encode3",
    "morton_decode3",
    "morton_keys_of_positions",
]

#: maximum bits per coordinate representable in a 64-bit 2-D Morton key
MAX_BITS_2D = 32
#: maximum bits per coordinate representable in a 64-bit 3-D Morton key
MAX_BITS_3D = 21

_U = np.uint64


def _spread2(x: np.ndarray) -> np.ndarray:
    """Insert one zero bit between each bit of the low 32 bits of ``x``."""
    x = x.astype(np.uint64) & _U(0xFFFFFFFF)
    x = (x | (x << _U(16))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x << _U(8))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x << _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << _U(2))) & _U(0x3333333333333333)
    x = (x | (x << _U(1))) & _U(0x5555555555555555)
    return x


def _compact2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread2` (keep every 2nd bit)."""
    x = x.astype(np.uint64) & _U(0x5555555555555555)
    x = (x | (x >> _U(1))) & _U(0x3333333333333333)
    x = (x | (x >> _U(2))) & _U(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> _U(4))) & _U(0x00FF00FF00FF00FF)
    x = (x | (x >> _U(8))) & _U(0x0000FFFF0000FFFF)
    x = (x | (x >> _U(16))) & _U(0x00000000FFFFFFFF)
    return x


def _spread3(x: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of the low 21 bits of ``x``."""
    x = x.astype(np.uint64) & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def _compact3(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread3` (keep every 3rd bit)."""
    x = x.astype(np.uint64) & _U(0x1249249249249249)
    x = (x | (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x | (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x | (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x | (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x | (x >> _U(32))) & _U(0x1FFFFF)
    return x


def morton_encode2(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """2-D Morton keys from integer coordinates (up to 32 bits each)."""
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    if np.any(x >> _U(MAX_BITS_2D)) or np.any(y >> _U(MAX_BITS_2D)):
        raise ValueError(f"2-D Morton coordinates must fit {MAX_BITS_2D} bits")
    return _spread2(x) | (_spread2(y) << _U(1))


def morton_decode2(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode2`; returns ``(x, y)``."""
    keys = np.asarray(keys, dtype=np.uint64)
    return _compact2(keys), _compact2(keys >> _U(1))


def morton_encode3(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """3-D Morton keys from integer coordinates (up to 21 bits each)."""
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    z = np.asarray(z, dtype=np.uint64)
    if (
        np.any(x >> _U(MAX_BITS_3D))
        or np.any(y >> _U(MAX_BITS_3D))
        or np.any(z >> _U(MAX_BITS_3D))
    ):
        raise ValueError(f"3-D Morton coordinates must fit {MAX_BITS_3D} bits")
    return _spread3(x) | (_spread3(y) << _U(1)) | (_spread3(z) << _U(2))


def morton_decode3(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_encode3`; returns ``(x, y, z)``."""
    keys = np.asarray(keys, dtype=np.uint64)
    return _compact3(keys), _compact3(keys >> _U(1)), _compact3(keys >> _U(2))


def morton_keys_of_positions(
    pos: np.ndarray,
    offset: np.ndarray,
    box: np.ndarray,
    depth: int,
    periodic: bool = True,
) -> np.ndarray:
    """Morton box numbers for particle positions at subdivision ``depth``.

    The system box is divided into ``2**depth`` cells per dimension (the
    FMM's recursive subdivision down to level ``depth``); each particle gets
    the Morton key of the cell it is located in.  Positions outside the box
    wrap (periodic) or clamp (open boundaries), mirroring how the FMM places
    stray particles into boundary boxes.
    """
    if not 0 <= depth <= MAX_BITS_3D:
        raise ValueError(f"depth must be in [0, {MAX_BITS_3D}], got {depth}")
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError(f"pos must have shape (n, 3), got {pos.shape}")
    offset = np.asarray(offset, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    ncells = 1 << depth
    rel = (pos - offset) / box * ncells
    cells = np.floor(rel).astype(np.int64)
    if periodic:
        cells %= ncells
    else:
        np.clip(cells, 0, ncells - 1, out=cells)
    return morton_encode3(cells[:, 0], cells[:, 1], cells[:, 2])
