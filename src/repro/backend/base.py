"""Execution-backend abstraction: who hosts the virtual ranks.

Every subsystem of this reproduction drives the *simulated* machine — the
virtual clocks, the LogGP cost model and the trace are the physics of the
experiment and never depend on where Python code actually executes.  An
:class:`ExecutionBackend` decides the *hosting*: where payload bytes travel
when ranks communicate and where per-rank work runs on the host.

Two engines ship:

* :class:`~repro.backend.inprocess.InProcessBackend` (default) — every
  virtual rank lives in the calling process; payload delivery is the
  historical in-process list shuffle, byte-identical to a build without
  this package.
* :class:`~repro.backend.process.ProcessBackend` — each virtual rank is
  owned by a real ``multiprocessing`` worker (rank ``r`` → worker
  ``r % workers``); alltoallv/p2p payload bytes physically traverse
  POSIX shared memory and the destination rank's worker performs the
  receive-side assembly, while modeled costs are still charged centrally
  so traces, ledgers and state fingerprints stay **bitwise identical** to
  the in-process run.

Backends are deliberately *transport + task* layers, not schedulers: the
charging code in :mod:`repro.simmpi` never moves, which is what makes the
cross-backend differential matrix (``tests/backend``) a pure equality
assertion.
"""

from __future__ import annotations

import atexit
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "BackendWorkerError",
    "ExecutionBackend",
    "backend_spec",
    "resolve_backend",
]

#: the engine names accepted by ``SimulationConfig.backend`` and the CLIs
BACKEND_NAMES = ("inprocess", "process")


class BackendError(RuntimeError):
    """A backend-level failure (bad spec, use after close, ...)."""


class BackendWorkerError(BackendError):
    """A worker process died or reported a failure; names the dead ranks."""


class ExecutionBackend:
    """Interface every execution engine implements.

    The payload vocabulary is that of :mod:`repro.simmpi.collectives`: a
    payload is ``None``, an ``ndarray``, or a tuple/list of ndarrays.
    """

    #: engine name ("inprocess", "process")
    name: str = "abstract"
    #: number of worker processes (0 = the calling process hosts all ranks)
    workers: int = 0

    def __init__(self) -> None:
        #: monotonic transport counters (exported as ``backend.*`` metrics
        #: by :func:`repro.backend.export_metrics`)
        self.counters: Dict[str, int] = {
            "backend.exchanges": 0,
            "backend.messages": 0,
            "backend.shm_bytes": 0,
            "backend.tickets": 0,
            "backend.tasks": 0,
            "backend.spawn_ns": 0,
            "backend.wait_ns": 0,
        }

    # -- transport ----------------------------------------------------------------

    def deliver(self, sends: Sequence[Dict[int, object]], nprocs: int):
        """Move alltoallv payloads; see :func:`repro.simmpi.collectives.alltoallv`.

        Returns ``recv`` with ``recv[j]`` a source-sorted list of
        ``(source_rank, payload)``.
        """
        raise NotImplementedError

    def route(self, transfers: Sequence[Tuple[int, int, object]], nprocs: int) -> List[object]:
        """Ship a batch of point-to-point payloads ``(src, dst, payload)``.

        Returns the payloads as observed at the destinations, in input
        order (self-transfers are returned as-is, like an MPI local
        delivery).
        """
        raise NotImplementedError

    def post_ticket(self, payload) -> object:
        """Hand a payload to the transport (SPMD send side); returns a
        claim ticket."""
        raise NotImplementedError

    def claim_ticket(self, ticket):
        """Redeem a ticket posted by :meth:`post_ticket` (SPMD recv side)."""
        raise NotImplementedError

    def discard_ticket(self, ticket) -> None:
        """Drop an unclaimed ticket (failed SPMD runs), freeing resources."""
        raise NotImplementedError

    # -- host-side execution ---------------------------------------------------------

    def rank_map(self, fn_path: str, per_rank_args: Sequence[tuple], shared=None) -> List[object]:
        """Run ``fn(shared, *per_rank_args[r])`` for every rank ``r``.

        ``fn_path`` is a dotted module path to a top-level callable (the
        spawn-safe way to name code across processes); rank ``r`` executes
        on its owning worker.  Results come back in rank order.
        """
        raise NotImplementedError

    def map_tasks(self, fn_path: str, items: Sequence[tuple]) -> List[object]:
        """Run ``fn(*items[i])`` for every item, distributed over workers;
        results in item order.  The generic fan-out used by the perf
        harness to run independent benchmark cells concurrently."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Tear down workers and transport resources (idempotent)."""

    @property
    def closed(self) -> bool:
        return False

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


# ------------------------------------------------------------------ resolution


_singletons_lock = threading.Lock()
_singletons: Dict[str, ExecutionBackend] = {}


def backend_spec(backend) -> Optional[str]:
    """The plain-string spec of a backend knob value (for checkpoints).

    Strings pass through; an :class:`ExecutionBackend` instance maps to its
    engine name (worker count is a host property, not simulation state);
    ``None`` stays ``None``.
    """
    if backend is None or isinstance(backend, str):
        return backend
    if isinstance(backend, ExecutionBackend):
        return backend.name
    raise BackendError(
        f"backend must be None, a spec string or an ExecutionBackend, "
        f"got {type(backend).__name__}"
    )


def _parse_spec(spec: str) -> Tuple[str, Optional[int]]:
    name, _, arg = spec.partition(":")
    workers: Optional[int] = None
    if arg:
        try:
            workers = int(arg)
        except ValueError:
            raise BackendError(
                f"malformed backend spec {spec!r}: worker count must be an "
                f"integer (e.g. 'process:4')"
            ) from None
        if workers < 1:
            raise BackendError(
                f"malformed backend spec {spec!r}: worker count must be >= 1"
            )
    if name not in BACKEND_NAMES:
        raise BackendError(
            f"unknown backend {name!r}; pick from {BACKEND_NAMES} "
            f"(optionally 'process:N' for N workers)"
        )
    if name == "inprocess" and workers is not None:
        raise BackendError("the inprocess backend takes no worker count")
    return name, workers


def resolve_backend(spec) -> ExecutionBackend:
    """Resolve a backend knob value to a live engine.

    ``spec`` may be an :class:`ExecutionBackend` (returned as-is), ``None``
    or ``"inprocess"`` (the shared in-process engine), ``"process"`` (a
    process-wide shared :class:`ProcessBackend` with the default worker
    count) or ``"process:N"``.  Shared engines are created lazily, reused
    across calls — spawning workers is expensive — and closed at
    interpreter exit.
    """
    if isinstance(spec, ExecutionBackend):
        if spec.closed:
            raise BackendError(f"backend {spec!r} is closed")
        return spec
    if spec is None:
        spec = "inprocess"
    if not isinstance(spec, str):
        raise BackendError(
            f"backend must be None, a spec string or an ExecutionBackend, "
            f"got {type(spec).__name__}"
        )
    name, workers = _parse_spec(spec)
    key = name if workers is None else f"{name}:{workers}"
    with _singletons_lock:
        engine = _singletons.get(key)
        if engine is not None and not engine.closed:
            return engine
        if name == "inprocess":
            from repro.backend.inprocess import InProcessBackend

            engine = InProcessBackend()
        else:
            from repro.backend.process import ProcessBackend, default_worker_count

            engine = ProcessBackend(workers=workers or default_worker_count())
        _singletons[key] = engine
        return engine


@atexit.register
def _close_singletons() -> None:  # pragma: no cover - interpreter teardown
    with _singletons_lock:
        engines = list(_singletons.values())
        _singletons.clear()
    for engine in engines:
        try:
            engine.close()
        except Exception:
            pass
