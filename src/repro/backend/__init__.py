"""repro.backend — pluggable execution engines for the virtual machine.

The simulated machine of :mod:`repro.simmpi` is the physics oracle: modeled
clocks, LogGP charges and traces never depend on the engine.  This package
decides the *hosting* — where payload bytes travel and where per-rank work
runs on the host:

* ``"inprocess"`` (default): all ranks in the calling process, byte- and
  object-identical to builds that predate this package.
* ``"process"`` / ``"process:N"``: virtual ranks hosted by real
  ``multiprocessing`` workers; payload bytes traverse POSIX shared memory
  while modeled costs are still charged centrally, keeping fingerprints
  bitwise-identical.

Select an engine with ``SimulationConfig(backend="process")``,
``machine.attach_backend(resolve_backend("process:4"))``, or the
``--backend`` flag of ``repro.perf`` / ``repro.verify``.  See
``docs/backends.md``.
"""

from repro.backend.base import (
    BACKEND_NAMES,
    BackendError,
    BackendWorkerError,
    ExecutionBackend,
    backend_spec,
    resolve_backend,
)
from repro.backend.inprocess import InProcessBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "BackendWorkerError",
    "ExecutionBackend",
    "InProcessBackend",
    "backend_spec",
    "resolve_backend",
    "export_metrics",
]


def export_metrics(backend, registry) -> None:
    """Publish a backend's transport counters as ``backend.*`` gauges on an
    observability registry (:class:`repro.obs.MetricsRegistry`).

    Schema (all monotonic over the backend's lifetime):

    ==========================  =====================================================
    metric                      meaning
    ==========================  =====================================================
    ``backend.exchanges``       alltoallv deliveries routed through the engine
    ``backend.messages``        inter-rank point-to-point payloads shipped
    ``backend.shm_bytes``       payload bytes that traversed shared memory
    ``backend.tickets``         SPMD mailbox payloads posted
    ``backend.tasks``           per-rank / fan-out task invocations
    ``backend.spawn_ns``        host ns spent spawning worker processes
    ``backend.wait_ns``         host ns the coordinator spent awaiting workers
    ``backend.workers``         configured worker count (0 = in-process)
    ==========================  =====================================================
    """
    for key, value in backend.counters.items():
        registry.gauge(key).set(float(value))
    registry.gauge("backend.workers").set(float(backend.workers))
