"""The in-process execution engine (default).

All virtual ranks live in the calling process.  Delivery is the historical
list shuffle of :mod:`repro.simmpi.collectives` — payload *objects* are
handed to their destinations without copying, exactly what every release
before the backend seam did, so an attached ``InProcessBackend`` is
byte-identical (and object-identical) to no backend at all.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Sequence, Tuple

from repro.backend.base import ExecutionBackend

__all__ = ["InProcessBackend", "deliver_inprocess", "import_task"]


def deliver_inprocess(sends: Sequence[Dict[int, object]], nprocs: int):
    """The historical alltoallv delivery: ``recv[j]`` is a source-ordered
    list of ``(src, payload)`` referencing the sender's payload objects."""
    recv: List[List[Tuple[int, object]]] = [[] for _ in range(nprocs)]
    for src, targets in enumerate(sends):
        for dst, payload in targets.items():
            if not 0 <= dst < nprocs:
                raise ValueError(f"rank {src} sends to invalid rank {dst}")
            recv[dst].append((src, payload))
    for lst in recv:
        lst.sort(key=lambda item: item[0])
    return recv


def import_task(fn_path: str) -> Callable:
    """Resolve a dotted ``module.attr`` path to a callable (the spawn-safe
    cross-process way to name code; the in-process engine uses the same
    resolution so both engines reject unimportable tasks identically)."""
    module_name, _, attr = fn_path.rpartition(".")
    if not module_name:
        raise ValueError(f"task path {fn_path!r} must be 'module.callable'")
    fn = getattr(importlib.import_module(module_name), attr)
    if not callable(fn):
        raise TypeError(f"task path {fn_path!r} does not name a callable")
    return fn


class InProcessBackend(ExecutionBackend):
    """Every rank in the calling process; zero-copy delivery."""

    name = "inprocess"
    workers = 0

    def deliver(self, sends: Sequence[Dict[int, object]], nprocs: int):
        self.counters["backend.exchanges"] += 1
        return deliver_inprocess(sends, nprocs)

    def route(self, transfers: Sequence[Tuple[int, int, object]], nprocs: int) -> List[object]:
        self.counters["backend.messages"] += len(transfers)
        return [payload for _src, _dst, payload in transfers]

    def post_ticket(self, payload):
        self.counters["backend.tickets"] += 1
        return payload

    def claim_ticket(self, ticket):
        return ticket

    def discard_ticket(self, ticket) -> None:
        pass

    def rank_map(self, fn_path: str, per_rank_args: Sequence[tuple], shared=None) -> List[object]:
        fn = import_task(fn_path)
        self.counters["backend.tasks"] += len(per_rank_args)
        return [fn(shared, *args) for args in per_rank_args]

    def map_tasks(self, fn_path: str, items: Sequence[tuple]) -> List[object]:
        fn = import_task(fn_path)
        self.counters["backend.tasks"] += len(items)
        return [fn(*item) for item in items]
