"""The multiprocess execution engine: one worker pool hosting the virtual ranks.

Rank ``r`` is owned by worker ``r % workers``.  Control flows over
duplex pipes; bulk payload bytes flow through POSIX shared memory
(:mod:`repro.backend.shm`):

* :meth:`ProcessBackend.deliver` / :meth:`ProcessBackend.route` — the
  coordinator packs every inter-rank payload column into a *send arena*,
  each destination rank's worker copies its inbound blocks into the
  *receive arena*, and the coordinator decodes fresh arrays.  Every
  inter-rank byte of an alltoallv / p2p round therefore physically
  traverses shared memory and the destination worker.
* :meth:`ProcessBackend.post_ticket` / :meth:`~ProcessBackend.claim_ticket`
  — the SPMD mailbox seam: one arena per in-flight message.
* :meth:`ProcessBackend.rank_map` / :meth:`ProcessBackend.map_tasks` —
  per-rank compute and generic task fan-out on the workers (tasks are
  named by dotted import path, the spawn-safe way to reference code).

Workers are started with the **spawn** method, never fork: a forked child
would inherit whatever module-level state the coordinator has accumulated
(instrument collectors, observability rings, cached plans, RNG state), and
the cross-backend equivalence contract requires workers to start from a
clean import (see ``tests/backend/test_process_isolation.py``).

Modeled time is *never* charged here.  The cost model runs centrally in
:mod:`repro.simmpi` before delivery, so a process-backend run's trace,
ledger and state fingerprints are bitwise those of the in-process run; this
layer only decides where host wall-clock is spent.

Failure semantics: a worker death is detected by the coordinator's poll
loop and surfaces as :class:`~repro.backend.base.BackendWorkerError`
naming the worker, its owned virtual ranks and the exit code — an exchange
never hangs on a corpse.  After a worker death the backend refuses further
work (``closed``), since rank state is gone.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend import shm as _shm
from repro.backend.base import BackendError, BackendWorkerError, ExecutionBackend
from repro.backend.inprocess import import_task

__all__ = ["ProcessBackend", "default_worker_count"]


def default_worker_count() -> int:
    """Workers for a bare ``"process"`` spec: up to 4, capped at the host's
    cores (more workers than cores only adds scheduling overhead)."""
    return max(1, min(4, os.cpu_count() or 1))


# ------------------------------------------------------------------ worker side


def _probe_worker_state() -> dict:
    """Spawn-cleanliness probe (runs *inside a worker* via ``map_tasks``).

    Workers are started with the ``spawn`` method precisely so that no
    coordinator-side module state — solver registries, backend singletons,
    live shm registries, warmed caches — leaks into them by fork.  The
    fork-state regression suite asserts on this report: a worker
    interpreter holds only the modules the backend itself needs, and none
    of the coordinator's mutable registries carry entries.
    """
    import multiprocessing
    import sys

    from repro.backend import base as _base
    from repro.core import handle as _handle

    return {
        "pid": os.getpid(),
        "is_child": multiprocessing.parent_process() is not None,
        "repro_modules": sorted(
            name for name in sys.modules if name.startswith("repro")
        ),
        "backend_singletons": len(_base._singletons),
        "solver_registry": sorted(_handle._REGISTRY),
        "live_shm_segments": _shm.live_segments(),
    }


def _worker_main(worker_index: int, conn) -> None:
    """Worker loop: copy jobs, task calls, shutdown.  Runs in the child."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # coordinator is gone
            return
        kind = msg[0]
        if kind == "shutdown":
            try:
                conn.send(("bye",))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            if kind == "copy":
                _, in_name, out_name, jobs = msg
                copied = 0
                src_arena = _shm.ShmArena.attach(in_name)
                try:
                    dst_arena = _shm.ShmArena.attach(out_name)
                    try:
                        src_buf, dst_buf = src_arena.buf, dst_arena.buf
                        for offset, nbytes in jobs:
                            dst_buf[offset : offset + nbytes] = src_buf[
                                offset : offset + nbytes
                            ]
                            copied += nbytes
                    finally:
                        dst_arena.detach()
                finally:
                    src_arena.detach()
                conn.send(("ok", copied))
            elif kind == "call":
                _, fn_path, with_shared, shared, items = msg
                fn = import_task(fn_path)
                results = []
                for slot, args in items:
                    out = fn(shared, *args) if with_shared else fn(*args)
                    results.append((slot, out))
                conn.send(("ok", results))
            elif kind == "ping":
                conn.send(("ok", worker_index, os.getpid()))
            elif kind == "exit":  # test hook: simulate a crash
                os._exit(int(msg[1]))
            else:
                conn.send(("err", f"unknown request {kind!r}", ""))
        except BaseException as exc:  # report, keep serving
            conn.send(
                ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )


# ------------------------------------------------------------- coordinator side


class ProcessBackend(ExecutionBackend):
    """Real ``multiprocessing`` workers hosting the virtual ranks."""

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        timeout: float = 300.0,
    ) -> None:
        super().__init__()
        import multiprocessing

        self.workers = int(workers) if workers is not None else default_worker_count()
        if self.workers < 1:
            raise BackendError(f"need at least one worker, got {self.workers}")
        self.timeout = float(timeout)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._tickets: Dict[str, Tuple[_shm.ShmArena, object]] = {}
        self._ticket_seq = 0
        self._closed = False
        self._procs = []
        self._conns = []
        t0 = time.perf_counter_ns()
        for w in range(self.workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(w, child_conn),
                name=f"repro-backend-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self.counters["backend.spawn_ns"] += time.perf_counter_ns() - t0

    # -- bookkeeping --------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def owned_ranks(self, worker: int, nprocs: int) -> List[int]:
        """The virtual ranks hosted by ``worker`` on an ``nprocs`` machine."""
        return list(range(worker, nprocs, self.workers))

    def worker_of(self, rank: int) -> int:
        return rank % self.workers

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(
                "process backend is closed (workers are gone); create a new one"
            )

    # -- request/response with death detection --------------------------------------

    def _send(self, worker: int, msg, op: str, nprocs: Optional[int] = None) -> None:
        """Send a request to ``worker``; a broken pipe means it is dead."""
        try:
            self._conns[worker].send(msg)
        except (BrokenPipeError, OSError):
            self._procs[worker].join(timeout=1.0)
            self._fail_worker(worker, op, nprocs, self._procs[worker].exitcode)

    def _collect(self, worker: int, op: str, nprocs: Optional[int] = None):
        """Await one response from ``worker``; diagnose death instead of hanging."""
        conn = self._conns[worker]
        proc = self._procs[worker]
        deadline = time.monotonic() + self.timeout
        t0 = time.perf_counter_ns()
        try:
            while True:
                if conn.poll(0.05):
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        reply = None
                    if reply is None:
                        self._fail_worker(worker, op, nprocs, proc.exitcode)
                    break
                if not proc.is_alive():
                    # drain any reply written before death
                    if conn.poll(0):
                        try:
                            reply = conn.recv()
                            break
                        except (EOFError, OSError):
                            pass
                    self._fail_worker(worker, op, nprocs, proc.exitcode)
                if time.monotonic() > deadline:
                    self._fail_worker(worker, op, nprocs, "timeout")
        finally:
            self.counters["backend.wait_ns"] += time.perf_counter_ns() - t0
        if reply[0] == "ok":
            return reply[1:]
        if reply[0] == "err":
            raise BackendWorkerError(
                f"worker {worker} failed during {op}: {reply[1]}\n{reply[2]}"
            )
        raise BackendWorkerError(
            f"worker {worker} sent unexpected reply {reply[0]!r} during {op}"
        )

    def _fail_worker(self, worker: int, op: str, nprocs: Optional[int], cause) -> None:
        """Mark the pool dead and raise the diagnostic the tests pin down."""
        ranks = (
            ", ".join(str(r) for r in self.owned_ranks(worker, nprocs))
            if nprocs
            else f"r % {self.workers} == {worker}"
        )
        detail = (
            f"no response within {self.timeout:.0f}s"
            if cause == "timeout"
            else f"exitcode={cause}"
        )
        self.close()
        raise BackendWorkerError(
            f"worker {worker} (virtual ranks {ranks}) died during {op} "
            f"({detail}); the exchange cannot complete"
        )

    # -- shared-memory shipping ------------------------------------------------------

    def _ship(
        self,
        msgs: Sequence[Tuple[int, int, object]],
        nprocs: int,
        op: str,
    ) -> List[object]:
        """Move payloads ``(src, dst, payload)``; returns received payloads
        in input order.  Self-messages are local deliveries (the original
        object, like MPI's self-send); inter-rank payloads come back as
        fresh arrays decoded from the receive arena."""
        self._check_open()
        inter = [i for i, (s, d, _p) in enumerate(msgs) if s != d]
        results: List[object] = [p for _s, _d, p in msgs]
        if not inter:
            return results
        specs, total, flat = _shm.encode_payloads([msgs[i][2] for i in inter])
        with self._lock:
            send_arena = _shm.ShmArena(total)
            recv_arena = _shm.ShmArena(total)
            try:
                _shm.write_columns(send_arena.buf, specs, flat)
                # one contiguous copy job per message (columns are laid out
                # consecutively; receive offsets mirror send offsets)
                jobs: Dict[int, List[Tuple[int, int]]] = {}
                moved = 0
                for spec, i in zip(specs, inter):
                    dst = msgs[i][1]
                    if spec.columns:
                        first = spec.columns[0].offset
                        last = spec.columns[-1]
                        span = last.offset + last.nbytes - first
                        if span:
                            jobs.setdefault(self.worker_of(dst), []).append(
                                (first, span)
                            )
                            moved += span
                involved = sorted(jobs)
                for w in involved:
                    self._send(
                        w, ("copy", send_arena.name, recv_arena.name, jobs[w]),
                        op, nprocs,
                    )
                for w in involved:
                    self._collect(w, op, nprocs)
                buf = recv_arena.buf
                for spec, i in zip(specs, inter):
                    results[i] = _shm.decode_payload(buf, spec)
                del buf
            finally:
                send_arena.release()
                recv_arena.release()
        self.counters["backend.messages"] += len(inter)
        self.counters["backend.shm_bytes"] += moved
        return results

    # -- transport API ----------------------------------------------------------------

    def deliver(self, sends: Sequence[Dict[int, object]], nprocs: int):
        msgs: List[Tuple[int, int, object]] = []
        for src, targets in enumerate(sends):
            for dst, payload in targets.items():
                if not 0 <= dst < nprocs:
                    raise ValueError(f"rank {src} sends to invalid rank {dst}")
                msgs.append((src, dst, payload))
        shipped = self._ship(msgs, nprocs, "alltoallv delivery")
        recv: List[List[Tuple[int, object]]] = [[] for _ in range(nprocs)]
        for (src, dst, _payload), received in zip(msgs, shipped):
            recv[dst].append((src, received))
        for lst in recv:
            lst.sort(key=lambda item: item[0])
        self.counters["backend.exchanges"] += 1
        return recv

    def route(self, transfers: Sequence[Tuple[int, int, object]], nprocs: int) -> List[object]:
        return self._ship(list(transfers), nprocs, "p2p round")

    # -- SPMD tickets ----------------------------------------------------------------

    def post_ticket(self, payload):
        self._check_open()
        specs, total, flat = _shm.encode_payloads([payload], allow_pickle=True)
        arena = _shm.ShmArena(total)
        _shm.write_columns(arena.buf, specs, flat)
        with self._lock:
            self._ticket_seq += 1
            key = f"{arena.name}#{self._ticket_seq}"
            self._tickets[key] = (arena, specs[0])
        self.counters["backend.tickets"] += 1
        self.counters["backend.shm_bytes"] += specs[0].nbytes
        return key

    def claim_ticket(self, ticket):
        with self._lock:
            arena, spec = self._tickets.pop(ticket)
        try:
            return _shm.decode_payload(arena.buf, spec)
        finally:
            arena.release()

    def discard_ticket(self, ticket) -> None:
        with self._lock:
            entry = self._tickets.pop(ticket, None)
        if entry is not None:
            entry[0].release()

    # -- host-side execution -----------------------------------------------------------

    def _fan_out(
        self,
        fn_path: str,
        items: Sequence[tuple],
        *,
        with_shared: bool,
        shared,
        slot_to_worker,
        op: str,
    ) -> List[object]:
        self._check_open()
        import_task(fn_path)  # fail fast in the coordinator on bad paths
        per_worker: Dict[int, List[Tuple[int, tuple]]] = {}
        for slot, args in enumerate(items):
            per_worker.setdefault(slot_to_worker(slot), []).append((slot, tuple(args)))
        results: List[object] = [None] * len(items)
        with self._lock:
            involved = sorted(per_worker)
            for w in involved:
                self._send(
                    w, ("call", fn_path, with_shared, shared, per_worker[w]), op
                )
            for w in involved:
                (pairs,) = self._collect(w, op)
                for slot, value in pairs:
                    results[slot] = value
        self.counters["backend.tasks"] += len(items)
        return results

    def rank_map(self, fn_path: str, per_rank_args: Sequence[tuple], shared=None) -> List[object]:
        return self._fan_out(
            fn_path,
            per_rank_args,
            with_shared=True,
            shared=shared,
            slot_to_worker=self.worker_of,
            op=f"rank_map({fn_path})",
        )

    def map_tasks(self, fn_path: str, items: Sequence[tuple]) -> List[object]:
        return self._fan_out(
            fn_path,
            items,
            with_shared=False,
            shared=None,
            slot_to_worker=lambda slot: slot % self.workers,
            op=f"map_tasks({fn_path})",
        )

    # -- diagnostics / tests -----------------------------------------------------------

    def ping(self) -> List[int]:
        """Round-trip every worker; returns their PIDs (health check)."""
        self._check_open()
        with self._lock:
            for w in range(self.workers):
                self._send(w, ("ping",), "ping")
            return [self._collect(w, "ping")[1] for w in range(self.workers)]

    def kill_worker(self, worker: int, exitcode: int = 3) -> None:
        """Ask ``worker`` to die (test hook for the crash-diagnostic suite)."""
        self._check_open()
        with self._lock:
            self._conns[worker].send(("exit", exitcode))
        deadline = time.monotonic() + self.timeout
        while self._procs[worker].is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn, proc in zip(self._conns, self._procs):
            if proc.is_alive():
                try:
                    conn.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
        for conn, proc in zip(self._conns, self._procs):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        with self._lock:
            tickets = list(self._tickets.values())
            self._tickets.clear()
        for arena, _spec in tickets:
            arena.release()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "live"
        return f"ProcessBackend(workers={self.workers}, {state})"
