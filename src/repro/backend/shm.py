"""Shared-memory payload codec for the process execution backend.

The transport contract of :mod:`repro.simmpi` is structure-of-arrays: a
*payload* is an ``ndarray`` or a tuple/list of ndarray columns that travel
together in one message.  This module turns arbitrary mixed-dtype payload
sets into one contiguous byte arena (backed by
:class:`multiprocessing.shared_memory.SharedMemory`) and back, **byte for
byte**:

* every column is serialized as its C-contiguous buffer at an aligned
  offset; dtype and shape travel out-of-band in a :class:`ColumnMeta`
  (control metadata goes over the worker pipes, only bulk bytes live in
  the arena),
* offsets and totals are computed in plain Python integers
  (:func:`arena_layout`), so arenas beyond 2 GiB cannot overflow any
  intermediate — the property suite checks the arithmetic with synthetic
  sizes far above ``INT32_MAX`` without allocating,
* decoding reconstructs dtype (including structured dtypes via the numpy
  descr), shape and container kind (bare array vs tuple vs list) exactly.

Arena layout (one exchange)::

    SharedMemory "repro-shm-<pid>-<seq>"
    +------------+---- pad to 16 ----+------------+---- ... ----+
    | column 0   |                   | column 1   |             |
    | raw bytes  |                   | raw bytes  |             |
    +------------+-------------------+------------+-------------+
    ^ offset 0                       ^ ColumnMeta.offset

Every :class:`ShmArena` created by this process is tracked in a registry so
test teardown can assert that no segment leaked
(:func:`live_segments`).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import threading
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ALIGNMENT",
    "ColumnMeta",
    "PayloadSpec",
    "ShmArena",
    "arena_layout",
    "encode_payloads",
    "decode_payload",
    "live_segments",
]

#: every column starts on a 16-byte boundary (safe for any numpy itemsize)
ALIGNMENT = 16

_KINDS = ("array", "tuple", "list", "none", "pickle")


@dataclasses.dataclass(frozen=True)
class ColumnMeta:
    """Location and type of one serialized column inside an arena."""

    descr: object  # numpy dtype descr (str, or list for structured dtypes)
    shape: Tuple[int, ...]
    offset: int
    nbytes: int


@dataclasses.dataclass(frozen=True)
class PayloadSpec:
    """One payload's container kind plus its column metas."""

    kind: str  # "array" | "tuple" | "list" | "none"
    columns: Tuple[ColumnMeta, ...]

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns)


def _align(offset: int) -> int:
    """Next ``ALIGNMENT``-multiple at or after ``offset`` (plain ints)."""
    offset = int(offset)
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def arena_layout(sizes: Sequence[int]) -> Tuple[List[int], int]:
    """Aligned offsets for blocks of the given byte sizes, plus the total.

    Pure Python-int arithmetic: safe for totals beyond 2 GiB (and beyond
    64-bit — ints don't wrap), which is what the synthetic-size property
    tests pin down.
    """
    offsets: List[int] = []
    cursor = 0
    for size in sizes:
        size = int(size)
        if size < 0:
            raise ValueError(f"negative block size {size}")
        cursor = _align(cursor)
        offsets.append(cursor)
        cursor += size
    return offsets, cursor


def _columns_of(payload) -> Tuple[str, List[np.ndarray]]:
    """Split a payload into (container kind, list of ndarray columns)."""
    if payload is None:
        return "none", []
    if isinstance(payload, np.ndarray):
        return "array", [payload]
    if isinstance(payload, (tuple, list)):
        kind = "tuple" if isinstance(payload, tuple) else "list"
        if not all(isinstance(c, np.ndarray) for c in payload):
            raise TypeError(
                f"{kind} payloads must contain only ndarrays to travel as "
                f"raw columns"
            )
        return kind, list(payload)
    raise TypeError(f"unsupported payload type {type(payload)!r}")


def _check_dtype(arr: np.ndarray) -> np.dtype:
    dtype = arr.dtype
    if dtype.hasobject:
        raise TypeError(
            f"object-dtype arrays cannot travel through shared memory "
            f"(got dtype {dtype!r})"
        )
    return dtype


def encode_payloads(
    payloads: Sequence[object], *, allow_pickle: bool = False
) -> Tuple[List[PayloadSpec], int, List[np.ndarray]]:
    """Plan the arena for a batch of payloads.

    Returns ``(specs, total_bytes, flat_columns)`` where ``specs[i]``
    describes ``payloads[i]`` and ``flat_columns`` lists every column in
    arena order (what :func:`write_columns` will copy in).

    With ``allow_pickle=True`` a payload that is not array-structured (the
    SPMD mailboxes carry arbitrary Python objects) is shipped as one pickled
    byte column instead of being rejected.  The structured transports
    (alltoallv / p2p) keep the strict default so exotic payloads fail loudly
    rather than silently taking the slow path.
    """
    kinds: List[str] = []
    all_columns: List[List[np.ndarray]] = []
    flat: List[np.ndarray] = []
    for payload in payloads:
        try:
            kind, cols = _columns_of(payload)
            cols = [np.ascontiguousarray(c) for c in cols]
            for c in cols:
                _check_dtype(c)
        except TypeError:
            if not allow_pickle:
                raise
            kind = "pickle"
            cols = [np.frombuffer(pickle.dumps(payload), dtype=np.uint8)]
        kinds.append(kind)
        all_columns.append(cols)
        flat.extend(cols)
    offsets, total = arena_layout([c.nbytes for c in flat])
    specs: List[PayloadSpec] = []
    cursor = 0
    for kind, cols in zip(kinds, all_columns):
        metas = []
        for c in cols:
            metas.append(
                ColumnMeta(
                    descr=np.lib.format.dtype_to_descr(c.dtype),
                    shape=tuple(int(d) for d in c.shape),
                    offset=offsets[cursor],
                    nbytes=int(c.nbytes),
                )
            )
            cursor += 1
        specs.append(PayloadSpec(kind=kind, columns=tuple(metas)))
    return specs, total, flat


def write_columns(buf: memoryview, specs: Sequence[PayloadSpec], flat: Sequence[np.ndarray]) -> int:
    """Copy every column's bytes into the arena buffer; returns bytes written."""
    cursor = 0
    written = 0
    for spec in specs:
        for meta in spec.columns:
            arr = flat[cursor]
            cursor += 1
            if meta.nbytes:
                buf[meta.offset : meta.offset + meta.nbytes] = arr.tobytes()
            written += meta.nbytes
    return written


def decode_payload(buf: memoryview, spec: PayloadSpec):
    """Rebuild one payload (fresh arrays, container kind preserved)."""
    if spec.kind not in _KINDS:
        raise ValueError(f"unknown payload kind {spec.kind!r}")
    if spec.kind == "none":
        return None
    if spec.kind == "pickle":
        meta = spec.columns[0]
        return pickle.loads(bytes(buf[meta.offset : meta.offset + meta.nbytes]))
    columns = []
    for meta in spec.columns:
        dtype = np.dtype(meta.descr)
        raw = bytes(buf[meta.offset : meta.offset + meta.nbytes])
        arr = np.frombuffer(raw, dtype=dtype).reshape(meta.shape).copy()
        columns.append(arr)
    if spec.kind == "array":
        return columns[0]
    if spec.kind == "tuple":
        return tuple(columns)
    return columns


# ---------------------------------------------------------------------- arena


_live_lock = threading.Lock()
_live: Dict[str, "ShmArena"] = {}
_seq = 0


def live_segments() -> List[str]:
    """Names of shared-memory segments created by this process and not yet
    released — the leak assertion of the backend test fixtures."""
    with _live_lock:
        return sorted(_live)


def _next_name() -> str:
    global _seq
    with _live_lock:
        _seq += 1
        return f"repro-shm-{os.getpid()}-{_seq}"


class ShmArena:
    """A created-or-attached shared-memory segment with tracked lifetime.

    The creator calls :meth:`release` (close + unlink); attachers call
    :meth:`detach` (close only).  Both are idempotent, so error paths can
    release unconditionally in ``finally`` blocks.
    """

    def __init__(self, size: int, *, name: Optional[str] = None, create: bool = True) -> None:
        if create:
            self.shm = shared_memory.SharedMemory(
                create=True, size=max(int(size), 1), name=name or _next_name()
            )
            self.created = True
            with _live_lock:
                _live[self.shm.name] = self
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            self.created = False
        self._open = True

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        return cls(0, name=name, create=False)

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        return self.shm.buf

    def detach(self) -> None:
        """Close this process's mapping (attachers; idempotent)."""
        if not self._open:
            return
        self._open = False
        self.shm.close()

    def release(self) -> None:
        """Close and unlink (creators; idempotent)."""
        if not self._open:
            return
        self._open = False
        self.shm.close()
        if self.created:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with _live_lock:
                _live.pop(self.shm.name, None)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release() if self.created else self.detach()
