"""Partition-based parallel sorting [12] (sample sort with regular sampling).

Used by the FMM solver to place arbitrarily disordered particles into their
Z-Morton boxes: each rank sorts locally, contributes regularly spaced key
samples, all ranks agree on ``P-1`` splitter keys, partition their local
data and exchange the partitions with one collective all-to-all (the
fine-grained transport).  A final local multi-way merge restores local
order.

Compared to the merge-based method this always moves the full data volume
and uses collective all-to-all communication — cheap for disordered input,
wasteful for almost-sorted input; the FMM's max-movement heuristic
(:func:`repro.core.movement.fmm_prefers_merge_sort`) switches between the
two.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.core.balance import work_split_bounds
from repro.core.particles import ColumnBlock
from repro.perf import instrument
from repro.simmpi.collectives import allgatherv, alltoallv
from repro.simmpi.machine import Machine
from repro.sorting.merge_sort import local_sort

__all__ = [
    "partition_sort",
    "select_splitters",
    "partition_destinations",
    "partition_destinations_reference",
    "split_by_destination",
    "split_by_destination_reference",
]


def select_splitters(
    machine: Machine,
    sorted_keys: Sequence[np.ndarray],
    oversampling: int = 16,
    phase: Optional[str] = None,
    *,
    weights: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Agree on ``P-1`` global splitter keys by regular sampling.

    Each rank contributes up to ``oversampling`` regularly spaced keys from
    its locally sorted run; the gathered sample is sorted everywhere and
    regular positions become the splitters.  With regular sampling the
    resulting partition sizes are bounded by roughly ``2 n / P``.

    With per-element work ``weights`` (one array per rank, aligned with
    ``sorted_keys``) the sampling and the splitter positions both move from
    element counts to *cumulative work*: each rank samples at regular work
    quantiles of its local run, the sampled weights ride the gather, and
    splitters land at regular work quantiles of the key-sorted sample — so
    the agreed partition equalizes estimated work instead of counts.
    ``weights=None`` is bitwise-identical to the historical count-based
    behavior (same samples, same single allgather, same charge).
    """
    P = machine.nprocs
    samples: List[np.ndarray] = []
    wsamples: List[np.ndarray] = []
    for r, keys in enumerate(sorted_keys):
        n = keys.shape[0]
        if n == 0:
            samples.append(np.empty(0, dtype=np.uint64))
            wsamples.append(np.empty(0, dtype=np.float64))
            continue
        s = min(oversampling, n)
        if weights is None:
            pos = ((np.arange(s, dtype=np.float64) + 0.5) * n / s).astype(np.int64)
        else:
            w = np.asarray(weights[r], dtype=np.float64)
            if w.shape[0] != n:
                raise ValueError(
                    f"rank {r}: {w.shape[0]} weights for {n} keys"
                )
            cumw = np.cumsum(w)
            total = float(cumw[-1])
            if total <= 0.0:
                pos = ((np.arange(s, dtype=np.float64) + 0.5) * n / s).astype(np.int64)
            else:
                targets = (np.arange(s, dtype=np.float64) + 0.5) * (total / s)
                pos = np.minimum(
                    np.searchsorted(cumw, targets, side="right"), n - 1
                ).astype(np.int64)
            wsamples.append(np.ascontiguousarray(w[pos]))
        samples.append(np.ascontiguousarray(keys[pos]))
    gathered = allgatherv(machine, samples, phase)[0]
    if weights is not None:
        gathered_w = allgatherv(machine, wsamples, phase)[0]
        sorder = np.argsort(gathered, kind="stable")
        gathered = gathered[sorder]
        gathered_w = gathered_w[sorder]
    else:
        gathered = np.sort(gathered)
    if gathered.size == 0 or P == 1:
        return np.empty(0, dtype=np.uint64)
    if weights is not None:
        pos = work_split_bounds(gathered_w, P)[1:P]
        pos = np.minimum(pos, gathered.size - 1)
    else:
        pos = ((np.arange(1, P, dtype=np.float64)) * gathered.size / P).astype(np.int64)
    # sorting the gathered sample is a bare key sort, not a record sort
    machine.compute(
        np.full(
            P,
            kernels.KEY_SORT_STEP * gathered.size * max(1.0, np.log2(max(gathered.size, 2))),
        ),
        phase,
    )
    return gathered[pos].astype(np.uint64)


def partition_destinations(order: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Destination rank of each element given the global sort ``order`` and
    the part boundaries ``bounds`` (prefix sums of the target counts).

    One scatter of a :func:`np.repeat` run replaces the per-destination
    slice-assignment loop of :func:`partition_destinations_reference`; both
    produce bitwise-identical destination arrays.
    """
    if instrument.prefer_reference():
        return partition_destinations_reference(order, bounds)
    t0 = time.perf_counter_ns() if instrument.collecting() else 0
    dest = np.empty(order.shape[0], dtype=np.int64)
    dest[order] = np.repeat(
        np.arange(bounds.shape[0] - 1, dtype=np.int64), np.diff(bounds)
    )
    if t0:
        instrument.record(
            "partition_sort.destinations",
            time.perf_counter_ns() - t0,
            ops=max(int(order.shape[0]), 1),
        )
    return dest


def partition_destinations_reference(order: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Scalar oracle of :func:`partition_destinations`: one slice assignment
    per destination rank (the original implementation)."""
    P = bounds.shape[0] - 1
    dest = np.empty(order.shape[0], dtype=np.int64)
    for dst in range(P):
        dest[order[bounds[dst]:bounds[dst + 1]]] = dst
    return dest


def split_by_destination(block: ColumnBlock, d: np.ndarray) -> Dict[int, ColumnBlock]:
    """Split ``block`` into per-destination sub-blocks, keyed by destination
    in ascending order.

    A single stable argsort of the destination array yields every
    destination's element indices as a contiguous run (in original order,
    because the sort is stable), replacing the per-destination
    ``d == dst`` scans of :func:`split_by_destination_reference`.  Both
    return identical dicts: same key order, bitwise-equal columns.
    """
    if instrument.prefer_reference():
        return split_by_destination_reference(block, d)
    out: Dict[int, ColumnBlock] = {}
    if not block.n:
        return out
    t0 = time.perf_counter_ns() if instrument.collecting() else 0
    sorder = np.argsort(d, kind="stable")
    dsorted = d[sorder]
    targets, first = np.unique(dsorted, return_index=True)
    last = np.concatenate((first[1:], [dsorted.shape[0]]))
    for j, dst in enumerate(targets):
        out[int(dst)] = block.take(sorder[first[j]:last[j]])
    if t0:
        instrument.record(
            "partition_sort.split",
            time.perf_counter_ns() - t0,
            ops=max(int(block.n), 1),
        )
    return out


def split_by_destination_reference(
    block: ColumnBlock, d: np.ndarray
) -> Dict[int, ColumnBlock]:
    """Scalar oracle of :func:`split_by_destination`: one boolean scan per
    present destination (the original implementation)."""
    out: Dict[int, ColumnBlock] = {}
    if not block.n:
        return out
    targets = np.unique(d)
    for dst in targets:
        out[int(dst)] = block.take(np.flatnonzero(d == dst))
    return out


def partition_sort(
    machine: Machine,
    blocks: Sequence[ColumnBlock],
    key: str,
    phase: Optional[str] = None,
    *,
    target_counts: Optional[Sequence[int]] = None,
    oversampling: int = 32,
    presorted: bool = False,
    balance_key: Optional[str] = None,
) -> List[ColumnBlock]:
    """Globally sort distributed blocks by ``key`` into exact part sizes.

    The partitioning algorithm [12] produces parts of *specified* sizes:
    ``target_counts`` defaults to the current per-rank counts, matching the
    ScaFaCoS FMM which "performs no further load balancing" — with a
    single-process initial distribution the sorted particles therefore stay
    on that process and the solver computes sequentially (Fig. 6).  Pass
    balanced counts to rebalance instead.

    Alternatively pass ``balance_key`` naming a per-element work-weight
    column: the part boundaries are then chosen to equalize *cumulative
    work* along the sorted key order (weighted space-filling-curve
    partitioning) instead of honoring externally fixed counts — the
    load-balanced mode of :mod:`repro.core.balance`.  Mutually exclusive
    with ``target_counts``.

    Returns new per-rank blocks: locally sorted, globally partitioned
    (all keys on rank ``i`` <= all keys on rank ``j`` for ``i < j``) with
    exactly ``target_counts[i]`` elements on rank ``i``.

    Cost model: local sorts, the splitter agreement (sample allgather plus
    a bounded number of exact-partition refinement rounds, as in [12]),
    one collective all-to-all for the payload, and the local multi-way
    merges.  The data plane computes the exact partition directly.
    """
    if len(blocks) != machine.nprocs:
        raise ValueError(f"{len(blocks)} blocks for {machine.nprocs} ranks")
    if balance_key is not None and target_counts is not None:
        raise ValueError("pass either balance_key or target_counts, not both")
    P = machine.nprocs
    current = list(blocks) if presorted else local_sort(machine, blocks, key, phase)
    if balance_key is None:
        if target_counts is None:
            target_counts = [b.n for b in current]
        else:
            target_counts = [int(c) for c in target_counts]
            total = sum(b.n for b in current)
            if sum(target_counts) != total:
                raise ValueError(
                    f"target_counts sum {sum(target_counts)} != total elements {total}"
                )
    if P == 1:
        return current

    # communication of the splitter agreement: one sample allgather plus an
    # exact-partitioning refinement round of scalar reductions [12]
    select_splitters(
        machine,
        [b[key] for b in current],
        oversampling,
        phase,
        weights=None if balance_key is None else [b[balance_key] for b in current],
    )
    if machine.auditor is not None:
        machine.auditor.observe_collective(phase, 2 * (P - 1), 0)
    machine.advance(
        machine.model.tree_collective_time(P, 16.0, machine.topology.diameter()),
        phase,
        messages=2 * (P - 1),
    )

    # data plane: exact global partition at the prefix boundaries of
    # target_counts, ties broken by (rank, position) so the split is stable
    all_keys = np.concatenate([b[key] for b in current])
    src_rank = np.concatenate(
        [np.full(b.n, r, dtype=np.int64) for r, b in enumerate(current)]
    )
    local_pos = np.concatenate([np.arange(b.n, dtype=np.int64) for b in current])
    order = np.argsort(all_keys, kind="stable")  # stable = (rank, pos) tie order
    if balance_key is not None:
        all_weights = np.concatenate([b[balance_key] for b in current])
        bounds = work_split_bounds(all_weights[order], P)
    else:
        bounds = np.concatenate(
            ([0], np.cumsum(np.asarray(target_counts, dtype=np.int64)))
        )
    dest = partition_destinations(order, bounds)

    sends: List[dict] = []
    send_blocks: List[dict] = []
    offset = 0
    for r, block in enumerate(current):
        d = dest[offset:offset + block.n]
        offset += block.n
        blocks_out = split_by_destination(block, d)
        per_target = {dst: sub.payload() for dst, sub in blocks_out.items()}
        sends.append(per_target)
        send_blocks.append(blocks_out)

    recv = alltoallv(machine, sends, phase)

    out: List[ColumnBlock] = []
    merge_cost = np.zeros(P, dtype=np.float64)
    template = current[0]
    for dst in range(P):
        received = [send_blocks[src][dst] for src, _payload in recv[dst]]
        if not received:
            out.append(ColumnBlock.empty_like(template, 0))
            continue
        merged = ColumnBlock.concat(received)
        morder = np.argsort(merged[key], kind="stable")
        merged = merged.take(morder)
        out.append(merged)
        if merged.n > 1:
            # k-way merge of sorted runs: n log k
            merge_cost[dst] = kernels.SORT_STEP * merged.n * np.log2(max(len(received), 2))
    machine.compute(merge_cost, phase)
    return out
