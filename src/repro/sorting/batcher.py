"""Batcher's merge-exchange sorting network [16, Knuth Vol. III, Alg. 5.2.2M].

:func:`merge_exchange_rounds` emits the comparator schedule for ``n``
elements as a list of *rounds*; within a round every element participates in
at most one comparator, so a round maps directly onto one step of pairwise
point-to-point exchanges between parallel processes (each process holding
one sorted run).  The network has ``t(t+1)/2`` rounds for ``t = ceil(log2
n)`` and is *data-oblivious*: the same schedule sorts any input, which is
what allows the parallel merge sort to run without any collective
coordination.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["merge_exchange_rounds", "comparator_count"]


def merge_exchange_rounds(n: int) -> List[List[Tuple[int, int]]]:
    """Comparator rounds of Batcher's merge exchange for ``n`` elements.

    Each round is a list of ``(lo, hi)`` pairs with ``lo < hi``; applying
    "compare-exchange so position ``lo`` holds the smaller element" for all
    rounds in order sorts any ``n``-vector.  Within a round all pairs are
    disjoint.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n < 2:
        return []
    t = math.ceil(math.log2(n))
    rounds: List[List[Tuple[int, int]]] = []
    p = 1 << (t - 1)
    while p > 0:
        q = 1 << (t - 1)
        r = 0
        d = p
        while True:
            comparators: List[Tuple[int, int]] = []
            for i in range(n - d):
                if (i & p) == r:
                    comparators.append((i, i + d))
            if comparators:
                rounds.append(comparators)
            if q == p:
                break
            d = q - p
            q >>= 1
            r = p
        p >>= 1
    return rounds


def comparator_count(n: int) -> int:
    """Total number of comparators in the ``n``-element network."""
    return sum(len(r) for r in merge_exchange_rounds(n))
