"""Merge-based parallel sorting [15] on Batcher's merge-exchange network.

Each rank holds one locally sorted run; the network's comparator rounds are
executed as pairwise point-to-point merge steps (``MPI_Sendrecv``-style
exchanges, no collectives).  A comparator ``(a, b)`` establishes the
invariant "every key on rank *a* <= every key on rank *b*" while keeping the
per-rank element counts unchanged.

The crucial property for the paper's method B: before data moves, the pair
exchanges a constant-size control message (count, min key, max key).  If the
runs are already ordered — the common case when particles moved only
slightly since the previous time step — *no particle data is exchanged at
all*.  Otherwise only the overlap window ``[b.min, a.max]`` travels, which
for almost-sorted data is a small fraction of the particles.  This is why
"sorting the particles in this case causes that a majority of the particles
stays on its current process" translates into tiny redistribution times
(Fig. 7/8).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine
from repro.simmpi.p2p import exchange_pairs
from repro.sorting.batcher import merge_exchange_rounds

__all__ = ["merge_exchange_sort", "local_sort"]


def local_sort(
    machine: Machine,
    blocks: Sequence[ColumnBlock],
    key: str,
    phase: Optional[str] = None,
) -> List[ColumnBlock]:
    """Stable per-rank sort of every block by its ``key`` column."""
    out: List[ColumnBlock] = []
    cost = np.zeros(machine.nprocs, dtype=np.float64)
    for r, block in enumerate(blocks):
        keys = block[key]
        order = np.argsort(keys, kind="stable")
        out.append(block.take(order))
        n = keys.shape[0]
        if n > 1:
            # adaptive (timsort-like) cost: nearly sorted runs cost a single
            # pass, disordered data the full n log n — this is what makes
            # method B's steady-state local sorts cheap
            disorder = float(np.count_nonzero(keys[1:] < keys[:-1])) / (n - 1)
            cost[r] = kernels.SORT_STEP * n * (1.0 + disorder * np.log2(n))
    machine.compute(cost, phase)
    return out


def _control_payload(block: ColumnBlock, key: str) -> np.ndarray:
    """(count, min key, max key) as a 3-element array (24-byte message)."""
    keys = block[key]
    if keys.shape[0] == 0:
        return np.zeros(3, dtype=np.uint64)
    return np.asarray([keys.shape[0], keys[0], keys[-1]], dtype=np.uint64)


def merge_exchange_sort(
    machine: Machine,
    blocks: Sequence[ColumnBlock],
    key: str,
    phase: Optional[str] = None,
    *,
    presorted: bool = False,
    verify: bool = True,
) -> Tuple[List[ColumnBlock], bool]:
    """Sort distributed blocks globally by ``key`` with merge-exchange.

    Parameters
    ----------
    blocks:
        one block per rank; per-rank counts are preserved (a comparator
        splits the merged pair back at the original counts).
    presorted:
        skip the initial local sorts when each rank's block is already
        locally sorted (the method-B steady state: the previous step's
        output order plus slight position drift re-keyed and locally
        re-sorted by the caller).
    verify:
        exchange boundary keys after the network and reduce a global
        sortedness flag (one cheap extra round).  The comparator network is
        only *guaranteed* to sort equal-size blocks [16]; with the nearly
        equal counts of the method-B steady state failures are rare but
        possible, and callers fall back to the partition-based sort on the
        (now almost sorted) data when the flag is False.

    Returns ``(blocks, sorted_ok)``; blocks satisfy "each block locally
    sorted, counts unchanged", and additionally ``max(key on rank i) <=
    min(key on rank j)`` for all ``i < j`` whenever ``sorted_ok``.
    """
    if len(blocks) != machine.nprocs:
        raise ValueError(f"{len(blocks)} blocks for {machine.nprocs} ranks")
    current = list(blocks) if presorted else local_sort(machine, blocks, key, phase)
    P = machine.nprocs
    if P == 1:
        return current, True

    for round_pairs in merge_exchange_rounds(P):
        # 1. control exchange: (count, min, max) both ways for every pair
        controls = exchange_pairs(
            machine,
            [
                (a, b, _control_payload(current[a], key), _control_payload(current[b], key))
                for a, b in round_pairs
            ],
            phase,
        )
        # 2. decide which pairs actually overlap; windows are a suffix of a
        #    (keys >= b.min) and a prefix of b (keys <= a.max), both
        #    non-empty whenever the runs overlap
        windows: List[Tuple[int, int, ColumnBlock, ColumnBlock, int, int]] = []
        for a, b in round_pairs:
            ctrl_b, ctrl_a = controls[(a, b)]  # received at a: b's control
            count_a, _min_a, max_a = int(ctrl_a[0]), ctrl_a[1], ctrl_a[2]
            count_b, min_b, _max_b = int(ctrl_b[0]), ctrl_b[1], ctrl_b[2]
            if count_a == 0 or count_b == 0:
                continue
            if max_a <= min_b:
                continue  # already ordered: no particle data moves
            keys_a = current[a][key]
            keys_b = current[b][key]
            na_win = count_a - int(np.searchsorted(keys_a, min_b, side="left"))
            nb_win = int(np.searchsorted(keys_b, max_a, side="right"))
            wa = current[a].take(np.arange(count_a - na_win, count_a))
            wb = current[b].take(np.arange(nb_win))
            windows.append((a, b, wa, wb, na_win, nb_win))
        if not windows:
            continue
        # 3. window exchange (both directions overlap, one message each way)
        exchange_pairs(
            machine,
            [(a, b, wa.payload(), wb.payload()) for a, b, wa, wb, _, _ in windows],
            phase,
        )
        # 4. merge the identical combined window on both sides and split at
        #    the original counts: a keeps the lowest na_win, b the highest
        #    nb_win.  Both sides concatenate in (a-window, b-window) order
        #    and sort stably, so they derive the same permutation.
        merge_cost = np.zeros(P, dtype=np.float64)
        for a, b, wa, wb, na_win, nb_win in windows:
            combined = ColumnBlock.concat([wa, wb])
            order = np.argsort(combined[key], kind="stable")
            low = combined.take(order[:na_win])
            high = combined.take(order[na_win:])
            n_keep_a = current[a].n - na_win
            current[a] = ColumnBlock.concat(
                [current[a].take(np.arange(n_keep_a)), low]
            )
            current[b] = ColumnBlock.concat(
                [high, current[b].take(np.arange(nb_win, current[b].n))]
            )
            w = combined.n
            if w > 1:
                merge_cost[a] += kernels.SORT_STEP * w * np.log2(w)
                merge_cost[b] += kernels.SORT_STEP * w * np.log2(w)
        machine.compute(merge_cost, phase)

    if not verify:
        return current, True
    return current, _verify_sorted(machine, current, key, phase)


def _verify_sorted(
    machine: Machine,
    blocks: Sequence[ColumnBlock],
    key: str,
    phase: Optional[str],
) -> bool:
    """Boundary-key ring check plus a small reduction of the ok-flags."""
    from repro.simmpi.collectives import allreduce
    from repro.simmpi.p2p import send_round

    P = machine.nprocs
    nonempty = [r for r in range(P) if blocks[r].n]
    # each non-empty rank sends its max key to the next non-empty rank
    transfers = []
    for i in range(len(nonempty) - 1):
        src, dst = nonempty[i], nonempty[i + 1]
        transfers.append((src, dst, np.asarray([blocks[src][key][-1]])))
    recv = send_round(machine, transfers, phase)
    ok = np.ones(P)
    for r in range(P):
        for _src, payload in recv[r]:
            if blocks[r].n and payload[0] > blocks[r][key][0]:
                ok[r] = 0.0
    return bool(allreduce(machine, ok, op="min", phase=phase) > 0.5)
