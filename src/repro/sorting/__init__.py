"""Parallel sorting methods for distributed particle data.

The FMM solver places particles into Z-Morton-numbered boxes by parallel
sorting.  Two methods from the paper are implemented:

* :func:`~repro.sorting.partition_sort.partition_sort` — the partition-based
  parallel sorting algorithm [12] used for arbitrarily disordered input
  (method A, and method B's first execution): regular sampling selects
  splitters, a collective all-to-all moves each partition to its target
  process, and a local merge finishes.
* :func:`~repro.sorting.merge_sort.merge_exchange_sort` — the merge-based
  parallel sorting algorithm [15] used for *almost sorted* input under
  limited particle movement: local sorts followed by pairwise merge steps
  according to Batcher's merge-exchange sorting network [16], using only
  point-to-point communication.  Already-ordered pairs exchange only a
  constant-size control message, so nearly sorted data moves almost no
  bytes.
"""

from repro.sorting.batcher import merge_exchange_rounds
from repro.sorting.merge_sort import merge_exchange_sort
from repro.sorting.partition_sort import partition_sort

__all__ = ["merge_exchange_rounds", "merge_exchange_sort", "partition_sort"]
