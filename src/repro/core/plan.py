"""Plan-based resort engine: compiled, cached, fused redistribution schedules.

Method B's hot path repeats the same redistribution many times: every
``fcs_resort_*`` call of a time step routes application data with the *same*
resort indices, and consecutive time steps often leave the distribution
unchanged entirely.  Recomputing the routing schedule (unpacking indices,
grouping by target, validating the target permutation) on every call is pure
overhead — the plan-based communication technique of Sudarsan & Ribbens'
resizable-computation redistribution and of persistent/planned MPI
collectives applies directly.

:class:`ResortPlan` compiles a run's resort indices **once** into an
executable schedule:

* per source rank, the stable gather order that groups rows by target rank
  and the per-target send segments (the alltoallv send counts),
* per destination rank, the receive permutation that scatters arriving rows
  into their target positions — built from **one** schedule-distribution
  exchange of the packed target positions at compile time, after which data
  exchanges no longer carry any index column at all,
* the communication strategy (general or neighborhood all-to-all).  Because
  the counts are part of the plan, executions skip the dense
  ``MPI_Alltoall`` count exchange (``count_exchange="cached"``).

Executing a plan moves arbitrarily many data columns of mixed dtype in **one**
fused exchange: each rank packs its columns row-wise into a contiguous byte
record, ships one payload per target, and the receiver splits the records
back into typed columns.  Sending ``k`` columns therefore costs one message
round instead of ``k`` — exactly the per-array savings the ``FCS.resort``
redesign exposes to applications.

Plans carry their own statistics (:class:`ResortPlanStats`) and report them
into the machine trace counters (``resort_plan.*``) and, when a
:class:`~repro.verify.audit.CommAuditor` is attached, into the auditor's
independent plan ledger so the savings are observable *and* cross-checked.

Plan executions call :func:`~repro.simmpi.collectives.alltoallv` and hence
compose with the staged collective-algorithm engines
(:mod:`repro.simmpi.algos`): under e.g. ``alltoallv=bruck`` the fused byte
records route through the staged rounds, still with ``count_exchange=
"cached"`` (the plan's cached counts spare even the staged engines their
dense count exchange), and the delivered records stay bitwise identical.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resort import inverse_permutation, unpack_resort_index
from repro.obs.spans import machine_span
from repro.perf import instrument
from repro.simmpi.collectives import alltoallv, neighborhood_alltoallv
from repro.simmpi.machine import Machine

__all__ = ["COMM_KINDS", "ResortPlan", "ResortPlanStats", "PlanColumnSpec"]

#: the structured communication strategies a plan (and a
#: :class:`~repro.solvers.base.RunReport`) can carry
COMM_KINDS = ("alltoall", "neighborhood")

#: phase label under which schedule compilation is traced (kept separate from
#: the ``resort`` data exchanges so the amortization is visible per phase)
COMPILE_PHASE = "resort_plan"


@dataclasses.dataclass
class ResortPlanStats:
    """Counters describing how much work plans did (and saved).

    Attributes
    ----------
    compiles:
        schedules compiled (each costs one index-distribution exchange).
    cache_hits:
        compilations *skipped* because a valid plan was reused.
    executions:
        fused data exchanges executed.
    fused_columns:
        total data columns moved, summed over executions; with ``executions
        < fused_columns`` the fusion saved ``fused_columns - executions``
        exchange rounds versus the one-exchange-per-array legacy path.
    bytes_moved:
        inter-rank payload bytes of the fused data exchanges (self-sends are
        local copies and excluded, matching the trace's accounting).
    """

    compiles: int = 0
    cache_hits: int = 0
    executions: int = 0
    fused_columns: int = 0
    bytes_moved: int = 0

    def merged(self, other: "ResortPlanStats") -> "ResortPlanStats":
        return ResortPlanStats(
            compiles=self.compiles + other.compiles,
            cache_hits=self.cache_hits + other.cache_hits,
            executions=self.executions + other.executions,
            fused_columns=self.fused_columns + other.fused_columns,
            bytes_moved=self.bytes_moved + other.bytes_moved,
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of plan requests served from cache."""
        total = self.compiles + self.cache_hits
        return self.cache_hits / total if total else 0.0


@dataclasses.dataclass(frozen=True)
class PlanColumnSpec:
    """Shape contract of one fused column: dtype, trailing dims, row bytes."""

    dtype: np.dtype
    trailing: Tuple[int, ...]
    row_bytes: int


def _column_spec(arrays: Sequence[np.ndarray], index: int) -> PlanColumnSpec:
    """Validate that one column's per-rank arrays agree on dtype/shape."""
    first = arrays[0]
    dtype = np.dtype(first.dtype)
    trailing = tuple(int(d) for d in first.shape[1:])
    for r, arr in enumerate(arrays):
        if np.dtype(arr.dtype) != dtype:
            raise ValueError(
                f"column {index}: rank {r} has dtype {arr.dtype}, rank 0 has {dtype}"
            )
        if tuple(int(d) for d in arr.shape[1:]) != trailing:
            raise ValueError(
                f"column {index}: rank {r} has trailing shape {arr.shape[1:]}, "
                f"rank 0 has {trailing}"
            )
    row_bytes = dtype.itemsize * int(np.prod(trailing, dtype=np.int64)) if trailing else dtype.itemsize
    if row_bytes <= 0:
        raise ValueError(f"column {index}: zero-size rows cannot be redistributed")
    return PlanColumnSpec(dtype=dtype, trailing=trailing, row_bytes=row_bytes)


def _byte_rows(arr: np.ndarray, spec: PlanColumnSpec) -> np.ndarray:
    """View one column's rows as a contiguous ``(n, row_bytes)`` uint8 matrix."""
    arr = np.ascontiguousarray(arr, dtype=spec.dtype)
    n = arr.shape[0]
    return arr.view(np.uint8).reshape(n, spec.row_bytes)


class ResortPlan:
    """A compiled, reusable redistribution schedule for one set of resort
    indices.

    Compiling unpacks every packed (target rank, target position) value,
    groups rows by target, distributes the target positions to their owners
    in one exchange, and validates once that the targets form a permutation
    onto the new layout.  Every subsequent :meth:`execute` is then pure data
    movement: gather rows into per-target segments, one fused exchange,
    scatter rows into place — no index columns on the wire, no count
    exchange, no revalidation.

    Parameters
    ----------
    machine:
        the machine the schedule is compiled for.
    resort_indices:
        per-original-rank packed target locations (what a method-B
        :class:`~repro.solvers.base.RunReport` provides).
    old_counts / new_counts:
        per-rank row counts before/after the redistribution.
    comm:
        ``"alltoall"`` or ``"neighborhood"`` — the structured communication
        strategy (``RunReport.comm``).
    phase:
        trace phase label charged by :meth:`execute` (default ``"resort"``).
    """

    def __init__(
        self,
        machine: Machine,
        resort_indices: Sequence[np.ndarray],
        old_counts: Sequence[int],
        new_counts: Sequence[int],
        *,
        comm: str = "alltoall",
        phase: str = "resort",
    ) -> None:
        P = machine.nprocs
        if not (len(resort_indices) == len(old_counts) == len(new_counts) == P):
            raise ValueError("per-rank sequences must have one entry per rank")
        if comm not in COMM_KINDS:
            raise ValueError(f"comm must be one of {COMM_KINDS}, got {comm!r}")
        self.machine = machine
        self.comm = comm
        self.phase = phase
        self.old_counts = [int(c) for c in old_counts]
        self.new_counts = [int(c) for c in new_counts]
        self._indices: List[np.ndarray] = []
        #: stable per-source gather order grouping rows by target rank
        self._gather_order: List[np.ndarray] = []
        #: per-source list of (target, start, end) send segments over the
        #: gathered rows — the plan's cached alltoallv count table
        self._segments: List[List[Tuple[int, int, int]]] = []
        self.stats = ResortPlanStats()

        # validation + index unpacking, per rank in rank order (error
        # messages and their ordering match the original implementation)
        ranks_list: List[np.ndarray] = []
        pos_list: List[np.ndarray] = []
        for r in range(P):
            idx = np.asarray(resort_indices[r], dtype=np.int64)
            if idx.shape != (self.old_counts[r],):
                raise ValueError(
                    f"rank {r}: {idx.shape[0]} resort indices for "
                    f"{self.old_counts[r]} original particles"
                )
            if np.any(idx < 0):
                raise ValueError(
                    f"rank {r}: invalid (ghost) resort index cannot be planned"
                )
            ranks, positions = unpack_resort_index(idx)
            if idx.size and int(ranks.max()) >= P:
                raise ValueError(
                    f"rank {r}: target rank {int(ranks.max())} out of range [0, {P})"
                )
            self._indices.append(idx)
            ranks_list.append(ranks)
            pos_list.append(positions)

        with machine_span(machine, "resort_plan.compile", op="plan.compile", comm=comm):
            if instrument.prefer_reference():
                pos_sends = self._compile_schedules_reference(ranks_list, pos_list)
            else:
                pos_sends = self._compile_schedules(ranks_list, pos_list)

            # schedule distribution: the one-off exchange that tells every
            # destination which incoming row lands where.  This is the only
            # time index data travels; executions ship pure payload.
            if comm == "neighborhood":
                recv = neighborhood_alltoallv(machine, pos_sends, COMPILE_PHASE)
            else:
                recv = alltoallv(machine, pos_sends, COMPILE_PHASE)

            #: per-destination scatter permutation: ``out[p] = incoming[perm[p]]``
            self._scatter_perm: List[np.ndarray] = []
            for dst in range(P):
                parts = [payload for _src, payload in recv[dst]]
                incoming = (
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
                )
                n = self.new_counts[dst]
                if incoming.shape[0] != n:
                    raise ValueError(
                        f"rank {dst}: {incoming.shape[0]} resort targets for "
                        f"{n} new-layout slots"
                    )
                self._scatter_perm.append(inverse_permutation(incoming, n, dst))
            # building the inverse permutations is a local 8-byte scatter per row
            machine.copy(
                8.0 * np.asarray(self.new_counts, dtype=np.float64), COMPILE_PHASE
            )

        self._total_old = int(sum(self.old_counts))
        self._total_new = int(sum(self.new_counts))

        self.stats.compiles += 1
        machine.trace.bump("resort_plan.compiles")
        if machine.obs is not None:
            machine.obs.metrics.counter("resort_plan.compiles").inc()
        if machine.auditor is not None and hasattr(machine.auditor, "observe_plan_compile"):
            machine.auditor.observe_plan_compile(COMPILE_PHASE)

    # -- schedule compilation -----------------------------------------------------

    def _compile_schedules(
        self, ranks_list: List[np.ndarray], pos_list: List[np.ndarray]
    ) -> List[dict]:
        """Build gather orders and send segments for all ranks at once.

        One stable argsort of the composite key ``src_rank * P + target_rank``
        reproduces every rank's stable by-target argsort (ranks occupy
        disjoint, src-major key ranges, and stability preserves the original
        row order inside each range), so the per-rank schedules fall out of a
        single global sort plus run-boundary detection.  Produces structures
        bitwise identical to :meth:`_compile_schedules_reference`.
        """
        P = self.machine.nprocs
        t0 = time.perf_counter_ns() if instrument.collecting() else 0
        all_ranks = (
            np.concatenate(ranks_list) if ranks_list else np.empty(0, dtype=np.int64)
        )
        all_pos = (
            np.concatenate(pos_list) if pos_list else np.empty(0, dtype=np.int64)
        )
        counts = np.asarray(self.old_counts, dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        src = np.repeat(np.arange(P, dtype=np.int64), counts)
        gorder = np.argsort(src * np.int64(P) + all_ranks, kind="stable")
        sorted_src = src[gorder]
        sorted_ranks = all_ranks[gorder]
        sorted_pos = all_pos[gorder]
        # run boundaries of the (src, dst) segments over the sorted rows
        if gorder.size:
            change = np.flatnonzero(
                (np.diff(sorted_ranks) != 0) | (np.diff(sorted_src) != 0)
            )
            starts = np.concatenate(([0], change + 1))
            ends = np.concatenate((change + 1, [gorder.size]))
        else:
            starts = np.empty(0, dtype=np.int64)
            ends = np.empty(0, dtype=np.int64)
        seg_src = sorted_src[starts] if starts.size else starts
        seg_dst = sorted_ranks[starts] if starts.size else starts
        # per-rank slices of the segment table (seg_src is ascending)
        seg_of_rank = np.searchsorted(seg_src, np.arange(P + 1))
        self._moved_rows = int(((ends - starts)[seg_dst != seg_src]).sum())
        self._inter_messages = int((seg_dst != seg_src).sum())

        pos_sends: List[dict] = []
        dst_l = seg_dst.tolist()
        s_l = starts.tolist()
        e_l = ends.tolist()
        for r in range(P):
            base = int(offsets[r])
            self._gather_order.append(gorder[offsets[r]:offsets[r + 1]] - base)
            segments: List[Tuple[int, int, int]] = []
            sends: dict = {}
            for k in range(int(seg_of_rank[r]), int(seg_of_rank[r + 1])):
                dst, s, e = dst_l[k], s_l[k], e_l[k]
                segments.append((dst, s - base, e - base))
                sends[dst] = sorted_pos[s:e]
            self._segments.append(segments)
            pos_sends.append(sends)
        if t0:
            instrument.record(
                "resort_plan.compile",
                time.perf_counter_ns() - t0,
                ops=max(int(gorder.size), 1),
            )
        return pos_sends

    def _compile_schedules_reference(
        self, ranks_list: List[np.ndarray], pos_list: List[np.ndarray]
    ) -> List[dict]:
        """Scalar oracle of :meth:`_compile_schedules`: one argsort and
        segment scan per source rank (the original implementation)."""
        P = self.machine.nprocs
        pos_sends: List[dict] = []
        moved = 0
        messages = 0
        for r in range(P):
            ranks = ranks_list[r]
            positions = pos_list[r]
            order = np.argsort(ranks, kind="stable")
            sorted_ranks = ranks[order]
            sorted_pos = positions[order]
            segments: List[Tuple[int, int, int]] = []
            sends: dict = {}
            if order.size:
                bounds = np.flatnonzero(np.diff(sorted_ranks)) + 1
                starts = np.concatenate(([0], bounds))
                ends = np.concatenate((bounds, [sorted_ranks.size]))
                for s, e in zip(starts, ends):
                    dst = int(sorted_ranks[s])
                    segments.append((dst, int(s), int(e)))
                    sends[dst] = sorted_pos[s:e]
                    if dst != r:
                        moved += int(e - s)
                        messages += 1
            self._gather_order.append(order)
            self._segments.append(segments)
            pos_sends.append(sends)
        self._moved_rows = moved
        self._inter_messages = messages
        return pos_sends

    # -- validity -----------------------------------------------------------------

    def matches(
        self,
        resort_indices: Sequence[np.ndarray],
        old_counts: Optional[Sequence[int]] = None,
        new_counts: Optional[Sequence[int]] = None,
        comm: Optional[str] = None,
    ) -> bool:
        """Explicit validity check: is this plan still correct for the given
        distribution?

        Fast path: identical array objects (the common repeated-call case)
        are accepted without touching the data; otherwise the indices are
        compared element-wise — an unchanged distribution across time steps
        therefore skips recompilation entirely.

        A load-balance rebalance (``repro.core.balance``, see
        docs/load_balancing.md) moves the weighted split points, which
        changes the resort indices and per-rank counts — this check then
        correctly reports the cached plan stale and the handle recompiles.
        No special invalidation hook is needed: rebalances are infrequent
        by construction (the monitor's hysteresis), so the recompile cost
        amortizes exactly like any other layout change.
        """
        if comm is not None and comm != self.comm:
            return False
        if old_counts is not None and [int(c) for c in old_counts] != self.old_counts:
            return False
        if new_counts is not None and [int(c) for c in new_counts] != self.new_counts:
            return False
        if len(resort_indices) != len(self._indices):
            return False
        for mine, theirs in zip(self._indices, resort_indices):
            if mine is theirs:
                continue
            theirs = np.asarray(theirs)
            if mine.shape != theirs.shape or not np.array_equal(mine, theirs):
                return False
        return True

    # -- execution ----------------------------------------------------------------

    @property
    def total_rows(self) -> int:
        return int(sum(self.old_counts))

    def execute(
        self,
        columns: Sequence[Sequence[np.ndarray]],
        *,
        phase: Optional[str] = None,
    ) -> List[List[np.ndarray]]:
        """Redistribute data columns in one fused exchange.

        Parameters
        ----------
        columns:
            ``columns[c][r]`` is column ``c``'s array on rank ``r`` in the
            *original* order and distribution; columns may mix dtypes and
            trailing shapes (``(n,)``, ``(n, k)``, ...), but each column must
            be consistent across ranks and row counts must equal the plan's
            original counts.

        Returns
        -------
        The columns in the changed order and distribution, same structure
        and dtypes as the input.
        """
        machine = self.machine
        P = machine.nprocs
        phase = phase if phase is not None else self.phase
        if not columns:
            raise ValueError("at least one data column is required")
        cols = [list(col) for col in columns]
        for c, col in enumerate(cols):
            if len(col) != P:
                raise ValueError(
                    f"column {c}: {len(col)} per-rank arrays for {P} ranks"
                )
        specs = [_column_spec(col, c) for c, col in enumerate(cols)]
        record_bytes = sum(s.row_bytes for s in specs)
        with machine_span(
            machine, "resort_plan.execute", op="plan.execute",
            columns=len(cols), comm=self.comm,
        ):
            if instrument.prefer_reference():
                return self._execute_reference(cols, specs, record_bytes, phase)
            return self._execute_vectorized(cols, specs, record_bytes, phase)

    def _execute_vectorized(
        self,
        cols: List[List[np.ndarray]],
        specs: List[PlanColumnSpec],
        record_bytes: int,
        phase: str,
    ) -> List[List[np.ndarray]]:
        machine = self.machine
        P = machine.nprocs

        # row-count validation in the reference's (rank, column) order
        for r in range(P):
            n = self.old_counts[r]
            for c, col in enumerate(cols):
                if col[r].shape[0] != n:
                    raise ValueError(
                        f"column {c}, rank {r}: data has {col[r].shape[0]} rows, "
                        f"original particle count was {n}"
                    )

        # pack: byte-fuse the columns row-wise, gather by target, slice the
        # cached segments into one payload per destination.  The byte-record
        # layout is kept deliberately: typed per-column payload tuples were
        # measured slower at every preset scale because the simulated
        # collective's bookkeeping cost scales with the *number* of payload
        # arrays (see docs/performance.md).  What the compiled plan buys the
        # execution is the precomputed movement statistics below — no
        # per-segment Python scans remain on this path.
        t0 = time.perf_counter_ns() if instrument.collecting() else 0
        ncols = len(cols)
        sends: List[dict] = []
        for r in range(P):
            views = [_byte_rows(cols[c][r], specs[c]) for c in range(ncols)]
            records = views[0] if ncols == 1 else np.concatenate(views, axis=1)
            gathered = records[self._gather_order[r]]
            sends.append(
                {dst: gathered[s:e] for dst, s, e in self._segments[r]}
            )
        if t0:
            instrument.record(
                "resort_plan.pack",
                time.perf_counter_ns() - t0,
                ops=max(self._total_old * record_bytes, 1),
            )
        pack_bytes = (
            np.asarray(self.old_counts, dtype=np.float64) * record_bytes
        )

        machine.copy(pack_bytes, phase)
        if self.comm == "neighborhood":
            recv = neighborhood_alltoallv(machine, sends, phase)
        else:
            # counts are part of the plan: skip the dense count exchange
            recv = alltoallv(machine, sends, phase, count_exchange="cached")

        # unpack: concatenate source-ordered payloads, scatter into target
        # positions with the cached inverse permutation, split the byte
        # records back into typed columns
        t1 = time.perf_counter_ns() if instrument.collecting() else 0
        out: List[List[np.ndarray]] = [[] for _ in cols]
        for dst in range(P):
            n = self.new_counts[dst]
            parts = [payload for _src, payload in recv[dst]]
            incoming = (
                np.concatenate(parts)
                if parts
                else np.empty((0, record_bytes), dtype=np.uint8)
            )
            if incoming.shape[0] != n:
                raise ValueError(
                    f"rank {dst}: received {incoming.shape[0]} rows, expected {n}"
                )
            ordered = incoming[self._scatter_perm[dst]]
            offset = 0
            for c, spec in enumerate(specs):
                chunk = np.ascontiguousarray(
                    ordered[:, offset : offset + spec.row_bytes]
                )
                out[c].append(
                    chunk.view(spec.dtype).reshape((n,) + spec.trailing)
                )
                offset += spec.row_bytes
        if t1:
            instrument.record(
                "resort_plan.unpack",
                time.perf_counter_ns() - t1,
                ops=max(self._total_new * record_bytes, 1),
            )
        unpack_bytes = (
            np.asarray(self.new_counts, dtype=np.float64) * record_bytes
        )
        machine.copy(unpack_bytes, phase)

        moved = self._moved_rows * record_bytes
        self._count_execution(len(cols), moved)
        auditor = machine.auditor
        if auditor is not None and hasattr(auditor, "observe_plan_execution"):
            auditor.observe_plan_execution(
                phase, self._inter_messages, moved, len(cols)
            )
        return out

    def _execute_reference(
        self,
        cols: List[List[np.ndarray]],
        specs: List[PlanColumnSpec],
        record_bytes: int,
        phase: str,
    ) -> List[List[np.ndarray]]:
        """Scalar oracle of :meth:`execute`: per-rank packing, per-destination
        unpacking and per-segment statistics scans (the original
        implementation).  Charges the exact same modeled costs."""
        machine = self.machine
        P = machine.nprocs

        # pack: byte-fuse the columns row-wise, gather by target, slice the
        # cached segments into one payload per destination
        sends: List[dict] = []
        pack_bytes = np.zeros(P, dtype=np.float64)
        for r in range(P):
            n = self.old_counts[r]
            views = []
            for c, col in enumerate(cols):
                arr = col[r]
                if arr.shape[0] != n:
                    raise ValueError(
                        f"column {c}, rank {r}: data has {arr.shape[0]} rows, "
                        f"original particle count was {n}"
                    )
                views.append(_byte_rows(arr, specs[c]))
            records = views[0] if len(views) == 1 else np.concatenate(views, axis=1)
            gathered = records[self._gather_order[r]]
            sends.append(
                {dst: gathered[s:e] for dst, s, e in self._segments[r]}
            )
            pack_bytes[r] = float(n) * record_bytes

        machine.copy(pack_bytes, phase)
        if self.comm == "neighborhood":
            recv = neighborhood_alltoallv(machine, sends, phase)
        else:
            # counts are part of the plan: skip the dense count exchange
            recv = alltoallv(machine, sends, phase, count_exchange="cached")

        # unpack: concatenate source-ordered payloads, scatter into target
        # positions, split the byte records back into typed columns
        out: List[List[np.ndarray]] = [[] for _ in cols]
        unpack_bytes = np.zeros(P, dtype=np.float64)
        for dst in range(P):
            n = self.new_counts[dst]
            parts = [payload for _src, payload in recv[dst]]
            incoming = (
                np.concatenate(parts)
                if parts
                else np.empty((0, record_bytes), dtype=np.uint8)
            )
            if incoming.shape[0] != n:
                raise ValueError(
                    f"rank {dst}: received {incoming.shape[0]} rows, expected {n}"
                )
            ordered = incoming[self._scatter_perm[dst]]
            offset = 0
            for c, spec in enumerate(specs):
                chunk = np.ascontiguousarray(
                    ordered[:, offset : offset + spec.row_bytes]
                )
                out[c].append(
                    chunk.view(spec.dtype).reshape((n,) + spec.trailing)
                )
                offset += spec.row_bytes
            unpack_bytes[dst] = float(n) * record_bytes
        machine.copy(unpack_bytes, phase)

        moved = sum(
            int((e - s)) * record_bytes
            for r in range(P)
            for dst, s, e in self._segments[r]
            if dst != r
        )
        self._count_execution(len(cols), moved)
        auditor = machine.auditor
        if auditor is not None and hasattr(auditor, "observe_plan_execution"):
            messages = sum(
                1 for r in range(P) for dst, _s, _e in self._segments[r] if dst != r
            )
            auditor.observe_plan_execution(phase, messages, moved, len(cols))
        return out

    def _count_execution(self, ncols: int, moved: int) -> None:
        """Report one fused execution into plan stats, trace counters and
        (when attached) the observability metrics registry."""
        machine = self.machine
        self.stats.executions += 1
        self.stats.fused_columns += ncols
        self.stats.bytes_moved += moved
        machine.trace.bump("resort_plan.executions")
        machine.trace.bump("resort_plan.fused_columns", ncols)
        machine.trace.bump("resort_plan.bytes_moved", moved)
        obs = machine.obs
        if obs is not None:
            m = obs.metrics
            m.counter("resort_plan.executions").inc()
            m.counter("resort_plan.fused_columns").inc(ncols)
            m.counter("resort_plan.bytes_moved").inc(moved)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResortPlan(nprocs={self.machine.nprocs}, rows={self.total_rows}, "
            f"comm={self.comm!r}, executions={self.stats.executions})"
        )
