"""Fine-grained data redistribution (the ZMPI-ATASP analogue, [13,14]).

The operation sends **every particle to an individually computed target
process** using an all-to-all communication, optionally duplicating
particles (ghost particles are "created automatically during the particle
data redistribution step", Sect. II-C).  A user-defined *distribution
function* specifies the target process(es) for each local particle; the
generalized version used by the P2NFFT solver supports duplication by
returning multiple (element, target) pairs per particle.

Data plane: per-rank :class:`~repro.core.particles.ColumnBlock` s in, grouped
per-target sub-blocks over :func:`~repro.simmpi.collectives.alltoallv` (or
the neighborhood variant), concatenated source-ordered blocks out.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.particles import ColumnBlock
from repro.simmpi.collectives import alltoallv, neighborhood_alltoallv
from repro.simmpi.machine import Machine

__all__ = ["fine_grained_redistribute", "targets_only", "DistResult"]

#: A distribution function returns either a plain per-element target-rank
#: array of shape ``(n,)`` (no duplication), or a pair
#: ``(element_indices, target_ranks)`` of equal-length arrays where repeated
#: element indices create duplicates (ghost particles).
DistResult = Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]
DistFn = Callable[[int, ColumnBlock], DistResult]


def targets_only(fn: Callable[[int, ColumnBlock], np.ndarray]) -> DistFn:
    """Wrap a plain target-rank function as a distribution function."""
    return fn


def _normalize(block: ColumnBlock, result: DistResult) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalize a distribution-function result to (elem_idx, targets)."""
    if isinstance(result, tuple):
        elem_idx, targets = result
        elem_idx = np.asarray(elem_idx, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if elem_idx.shape != targets.shape or elem_idx.ndim != 1:
            raise ValueError(
                f"duplicating distribution must return equal 1-D arrays, got "
                f"{elem_idx.shape} and {targets.shape}"
            )
        if elem_idx.size and (elem_idx.min() < 0 or elem_idx.max() >= block.n):
            raise ValueError("element indices out of range")
        return elem_idx, targets
    targets = np.asarray(result, dtype=np.int64)
    if targets.shape != (block.n,):
        raise ValueError(
            f"distribution function must return shape ({block.n},), got {targets.shape}"
        )
    return np.arange(block.n, dtype=np.int64), targets


def fine_grained_redistribute(
    machine: Machine,
    blocks: Sequence[ColumnBlock],
    dist_fn: DistFn,
    phase: Optional[str] = None,
    *,
    comm: str = "alltoall",
) -> List[ColumnBlock]:
    """Redistribute per-rank blocks according to a distribution function.

    Parameters
    ----------
    blocks:
        one :class:`ColumnBlock` per rank (identical column sets).
    dist_fn:
        called as ``dist_fn(rank, block)``; see :data:`DistResult`.  Targets
        must be valid ranks.  Returning ``(elem_idx, targets)`` with repeated
        ``elem_idx`` duplicates particles (ghosts); elements whose index
        never appears are dropped (ghost removal works the same way).
    comm:
        ``"alltoall"`` uses the general collective with a dense count
        exchange; ``"neighborhood"`` models pre-posted point-to-point
        communication with known peers (Sect. III-B) — the caller guarantees
        targets are bounded-distance neighbors.

    Returns
    -------
    One block per rank: the concatenation of received sub-blocks in source
    rank order (stable within each source, preserving the sender's element
    order — the ordering contract the resort indices rely on).
    """
    if len(blocks) != machine.nprocs:
        raise ValueError(f"{len(blocks)} blocks for {machine.nprocs} ranks")
    if comm not in ("alltoall", "neighborhood"):
        raise ValueError(f"comm must be 'alltoall' or 'neighborhood', got {comm!r}")

    sends: List[dict] = []
    send_blocks: List[dict] = []  # parallel structure holding ColumnBlocks
    for rank, block in enumerate(blocks):
        elem_idx, targets = _normalize(block, dist_fn(rank, block))
        per_target: dict = {}
        blocks_out: dict = {}
        if targets.size:
            if targets.min() < 0 or targets.max() >= machine.nprocs:
                raise ValueError(f"rank {rank}: target ranks out of range")
            order = np.argsort(targets, kind="stable")
            sorted_targets = targets[order]
            # one gather for the whole rank, then zero-copy views per target
            gathered = block.take(elem_idx[order])
            bounds = np.flatnonzero(np.diff(sorted_targets)) + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [sorted_targets.size]))
            for s, e in zip(starts, ends):
                dst = int(sorted_targets[s])
                sub = gathered.row_slice(int(s), int(e))
                blocks_out[dst] = sub
                per_target[dst] = sub.payload()
        sends.append(per_target)
        send_blocks.append(blocks_out)

    if comm == "alltoall":
        recv = alltoallv(machine, sends, phase)
    else:
        recv = neighborhood_alltoallv(machine, sends, phase)

    out: List[ColumnBlock] = []
    template = blocks[0]
    for dst in range(machine.nprocs):
        received = [send_blocks[src][dst] for src, _payload in recv[dst]]
        if received:
            out.append(ColumnBlock.concat(received))
        else:
            out.append(ColumnBlock.empty_like(template, 0))
    return out
