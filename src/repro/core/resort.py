"""Resort indices: 64-bit packed (target rank, target position) values.

Method B's central data structure (Sect. III-B of the paper): after a solver
has reordered and redistributed the particles, it leaves behind *resort
indices* — for each **original** particle, a 64-bit integer whose upper
32 bits hold the target process rank and whose lower 32 bits hold the target
position on that process.  The library functions
``fcs_resort_floats``/``fcs_resort_ints`` then move any additional
application-specific particle data (velocities, accelerations, ...) to the
solver-specific order and distribution using one fine-grained
redistribution followed by a local permutation.

The same packing is used for the *index values* the P2NFFT solver attaches
to particle copies ("an 64-bit integer using 32 bit to store the rank of the
source process and 32 bit to store the source position", Sect. III-A), and
for the FMM's global consecutive initial numbering.  :data:`GHOST_INDEX`
marks ghost-particle duplicates ("ghost particles have an invalid index
value").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock
from repro.simmpi.machine import Machine

__all__ = [
    "RESORT_POS_BITS",
    "RANK_LIMIT",
    "POSITION_LIMIT",
    "GHOST_INDEX",
    "pack_resort_index",
    "unpack_resort_index",
    "initial_numbering",
    "inverse_permutation",
    "invert_indices",
    "apply_resort",
]

#: number of low bits storing the target position (upper bits: target rank)
RESORT_POS_BITS = 32
_POS_MASK = (1 << RESORT_POS_BITS) - 1

#: exclusive upper bound on packable ranks.  Positions get the full 32 bits,
#: but ranks only 31: the packed value lives in a *signed* int64 whose sign
#: bit is reserved for :data:`GHOST_INDEX`, so a rank with bit 31 set would
#: shift into the sign bit and collide with the ghost marker.
RANK_LIMIT = 1 << (63 - RESORT_POS_BITS)

#: exclusive upper bound on packable positions
POSITION_LIMIT = 1 << RESORT_POS_BITS

#: invalid index value marking ghost-particle duplicates
GHOST_INDEX = np.int64(-1)


def pack_resort_index(ranks: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Pack (rank, position) pairs into int64 index values."""
    ranks = np.asarray(ranks, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if np.any(ranks < 0) or np.any(ranks >= RANK_LIMIT):
        raise ValueError(f"ranks out of range [0, {RANK_LIMIT})")
    if np.any(positions < 0) or np.any(positions >= POSITION_LIMIT):
        raise ValueError(f"positions out of range [0, {POSITION_LIMIT})")
    return (ranks << RESORT_POS_BITS) | positions


def unpack_resort_index(indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_resort_index`; returns ``(ranks, positions)``."""
    indices = np.asarray(indices, dtype=np.int64)
    if np.any(indices < 0):
        raise ValueError("cannot unpack invalid (ghost) index values")
    return indices >> RESORT_POS_BITS, indices & _POS_MASK


def initial_numbering(counts: Sequence[int]) -> List[np.ndarray]:
    """Per-rank packed (rank, local position) numbering of the particles.

    This is the "consecutive numbering of the initial particles ... such
    that the particles of each single process are consecutively numbered"
    the FMM solver carries through its parallel sort (Sect. III-A).
    """
    return [
        pack_resort_index(np.full(int(n), r, dtype=np.int64), np.arange(int(n), dtype=np.int64))
        for r, n in enumerate(counts)
    ]


def inverse_permutation(positions: np.ndarray, n: int, rank: int) -> np.ndarray:
    """Invert target positions into a scatter permutation, validating once.

    ``positions[i]`` is the target slot of incoming row ``i``; the returned
    ``perm`` satisfies ``out[p] = incoming[perm[p]]``.  Raises if the
    positions do not hit each slot ``[0, n)`` exactly once — the permutation
    contract every resort relies on (and the validation a compiled
    :class:`~repro.core.plan.ResortPlan` performs once instead of per call).
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.shape != (n,):
        raise ValueError(
            f"rank {rank}: {positions.shape[0]} target positions for {n} slots"
        )
    if n and (
        positions.min() < 0
        or positions.max() >= n
        or np.any(np.bincount(positions, minlength=n) != 1)
    ):
        raise ValueError(f"rank {rank}: target positions are not a permutation")
    perm = np.empty(n, dtype=np.int64)
    perm[positions] = np.arange(n, dtype=np.int64)
    return perm


def invert_indices(
    machine: Machine,
    origloc: Sequence[np.ndarray],
    orig_counts: Sequence[int],
    phase: Optional[str] = None,
    *,
    comm: str = "alltoall",
) -> List[np.ndarray]:
    """Invert a distributed permutation given in original-location form.

    ``origloc[r][i]`` is the packed original location (rank, position) of
    the particle currently stored at position ``i`` on rank ``r`` — the
    numbering that the solvers carried through their reordering.  The
    inverse, returned here, is the *resort index* array: for each rank
    ``s`` an array of length ``orig_counts[s]`` whose entry at original
    position ``p`` packs the particle's **current** (changed) location.

    Implemented exactly as the paper describes for the FMM (Fig. 5):
    initialize new index values consecutively for the changed particles and
    send them back according to the original numbering — one fine-grained
    redistribution plus a local permutation.  This inversion is the
    "additional communication step required for resorting" that makes
    method B pay off only when its other redistributions shrink.
    """
    if len(origloc) != machine.nprocs or len(orig_counts) != machine.nprocs:
        raise ValueError("origloc/orig_counts must have one entry per rank")
    blocks: List[ColumnBlock] = []
    for r, ol in enumerate(origloc):
        ol = np.asarray(ol, dtype=np.int64)
        cur = pack_resort_index(
            np.full(ol.shape[0], r, dtype=np.int64), np.arange(ol.shape[0], dtype=np.int64)
        )
        blocks.append(ColumnBlock(origloc=ol, current=cur))

    def to_original(rank: int, block: ColumnBlock) -> np.ndarray:
        ranks, _ = unpack_resort_index(block["origloc"])
        return ranks

    received = fine_grained_redistribute(machine, blocks, to_original, phase, comm=comm)

    out: List[np.ndarray] = []
    for r, block in enumerate(received):
        n = int(orig_counts[r])
        if block.n != n:
            raise ValueError(
                f"rank {r}: received {block.n} index values for {n} original particles"
            )
        _, pos = unpack_resort_index(block["origloc"])
        result = np.empty(n, dtype=np.int64)
        result[pos] = block["current"]
        out.append(result)
    # local permutation cost: scatter 8-byte values into place, per rank
    machine.copy(8.0 * np.asarray([int(c) for c in orig_counts], dtype=np.float64), phase)
    return out


def apply_resort(
    machine: Machine,
    resort_indices: Sequence[np.ndarray],
    data: Sequence[ColumnBlock],
    new_counts: Sequence[int],
    phase: Optional[str] = None,
    *,
    comm: str = "alltoall",
) -> List[ColumnBlock]:
    """Redistribute additional particle data according to resort indices.

    This is the one-shot engine behind the legacy resort path: each original
    particle's extra columns are sent to the target process from its resort
    index and stored at the target position ("the fine-grained data
    redistribution operation followed by a permutation according to the
    target positions contained in the resort indices", Sect. III-B).  The
    schedule (grouping, counts, target permutation) is recomputed — and an
    8-byte index column shipped — on *every* call; repeated resorts with the
    same indices should compile a :class:`~repro.core.plan.ResortPlan`
    instead and reuse it.
    """
    if not (len(resort_indices) == len(data) == len(new_counts) == machine.nprocs):
        raise ValueError("per-rank sequences must have one entry per rank")
    blocks: List[ColumnBlock] = []
    for r, (idx, block) in enumerate(zip(resort_indices, data)):
        idx = np.asarray(idx, dtype=np.int64)
        if idx.shape != (block.n,):
            raise ValueError(
                f"rank {r}: {idx.shape[0]} resort indices for {block.n} data rows"
            )
        b = block.copy()
        b["_resort"] = idx
        blocks.append(b)

    def to_target(rank: int, block: ColumnBlock) -> np.ndarray:
        ranks, _ = unpack_resort_index(block["_resort"])
        return ranks

    received = fine_grained_redistribute(machine, blocks, to_target, phase, comm=comm)

    out: List[ColumnBlock] = []
    per_rank_bytes = np.zeros(machine.nprocs, dtype=np.float64)
    for r, block in enumerate(received):
        n = int(new_counts[r])
        if block.n != n:
            raise ValueError(f"rank {r}: received {block.n} rows, expected {n}")
        _, pos = unpack_resort_index(block["_resort"])
        result = block.drop("_resort").take(inverse_permutation(pos, n, r))
        out.append(result)
        per_rank_bytes[r] = result.nbytes
    machine.copy(per_rank_bytes, phase)
    return out
