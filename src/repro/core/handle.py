"""The ScaFaCoS-like library interface (``fcs_*``).

Mirrors the usage protocol of Sect. II-A of the paper:

>>> fcs = fcs_init("fmm", machine)                     # choose solver
>>> fcs.set_common(box=(248.,)*3, periodic=True)       # system properties
>>> fcs.set_resort(True)                               # opt into method B
>>> fcs.tune(particles)                                # optional tuning step
>>> report = fcs.run(particles)                        # compute interactions
>>> if fcs.resort_availability():                      # did order change?
...     vel = fcs.resort_floats(vel)                   # adapt extra data
>>> fcs.destroy()

``run`` computes potentials and fields for the particle positions/charges in
a :class:`~repro.core.particles.ParticleSet`.  With resorting disabled
(method A) the original particle order and distribution is restored; with
resorting enabled (method B) the solver-specific order and distribution is
returned whenever the application's local particle arrays are large enough,
and :meth:`FCS.resort_floats` / :meth:`FCS.resort_ints` redistribute
additional application data the solver does not know about (velocities,
accelerations, ...).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import apply_resort
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver

__all__ = ["FCS", "fcs_init", "register_solver", "available_solvers"]


_REGISTRY: Dict[str, Callable[..., Solver]] = {}


def register_solver(name: str, factory: Callable[..., Solver]) -> None:
    """Register a solver factory under an ``fcs_init`` method name."""
    _REGISTRY[name] = factory


def _ensure_builtin_registry() -> None:
    # populated lazily to avoid import cycles between core and solvers
    if _REGISTRY:
        return
    from repro.solvers.fmm.solver import FMMSolver
    from repro.solvers.p2nfft.solver import P2NFFTSolver
    from repro.solvers.direct_solver import DirectSolver
    from repro.solvers.ewald_solver import EwaldSolver

    _REGISTRY.setdefault("fmm", FMMSolver)
    _REGISTRY.setdefault("p2nfft", P2NFFTSolver)
    _REGISTRY.setdefault("direct", DirectSolver)
    _REGISTRY.setdefault("ewald", EwaldSolver)


def available_solvers() -> List[str]:
    """Names accepted by :func:`fcs_init`."""
    _ensure_builtin_registry()
    return sorted(_REGISTRY)


def fcs_init(method: str, machine: Machine, **solver_kwargs) -> "FCS":
    """Create a new solver instance (``fcs_init``).

    ``method`` selects the solver ("fmm", "p2nfft", "direct"); ``machine``
    plays the role of the MPI communicator specifying the group of parallel
    processes that execute the solver.
    """
    _ensure_builtin_registry()
    try:
        factory = _REGISTRY[method]
    except KeyError:
        raise ValueError(
            f"unknown solver {method!r}; available: {available_solvers()}"
        ) from None
    return FCS(factory(machine, **solver_kwargs), machine)


class FCS:
    """Handle for one solver instance (the ``FCS`` handle of the C API)."""

    def __init__(self, solver: Solver, machine: Machine) -> None:
        self._solver = solver
        self.machine = machine
        self._resort_requested = False
        self._max_move: Optional[float] = None
        self._last_report: Optional[RunReport] = None
        self._destroyed = False

    # -- configuration -----------------------------------------------------------

    @property
    def method(self) -> str:
        return self._solver.name

    @property
    def solver(self) -> Solver:
        """The underlying solver (for solver-specific setter functions)."""
        return self._solver

    def set_common(self, box, offset=(0.0, 0.0, 0.0), periodic: bool = True) -> None:
        """Set particle-system properties (``fcs_set_common``)."""
        self._check_alive()
        self._solver.set_common(box, offset, periodic)

    def set_resort(self, flag: bool) -> None:
        """Opt into method B: request the solver-specific particle order and
        distribution to be returned from :meth:`run`."""
        self._check_alive()
        self._resort_requested = bool(flag)

    def set_max_particle_move(self, max_move: Optional[float]) -> None:
        """Pass the application's bound on the maximum particle movement
        since the previous :meth:`run` (``None`` = unknown).  Enables the
        limited-movement redistribution strategies."""
        self._check_alive()
        if max_move is not None and max_move < 0:
            raise ValueError(f"max_move must be non-negative, got {max_move}")
        self._max_move = max_move

    # -- execution -----------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Tuning step (``fcs_tune``)."""
        self._check_alive()
        self._solver.tune(particles, accuracy)

    def run(self, particles: ParticleSet) -> RunReport:
        """Compute the long-range interactions (``fcs_run``).

        Writes potentials and fields into ``particles``.  Returns the run
        report; use :meth:`resort_availability` for the paper's query
        function telling whether the particle order and distribution was
        changed.
        """
        self._check_alive()
        report = self._solver.run(
            particles, resort=self._resort_requested, max_move=self._max_move
        )
        self._last_report = report
        self._max_move = None  # a bound holds for one run only
        return report

    # -- method B support --------------------------------------------------------------

    @property
    def last_report(self) -> Optional[RunReport]:
        """The :class:`RunReport` of the most recent :meth:`run` (``None``
        before any run) — exposed for the verification subsystem's
        resort-index invariants."""
        return self._last_report

    def resort_availability(self) -> bool:
        """Whether the last run returned the changed (solver-specific)
        particle order and distribution, i.e. whether resort indices exist.

        ``False`` after a method-A run, before any run, or when the local
        particle data arrays of at least one process were too small so the
        original order and distribution had to be restored.
        """
        return bool(self._last_report and self._last_report.changed)

    def resort_floats(self, data: List[np.ndarray]) -> List[np.ndarray]:
        """Redistribute additional per-particle float data
        (``fcs_resort_floats``).

        ``data`` holds one array per rank in the *original* order and
        distribution of the particles before the last run; shapes may be
        ``(n_i,)`` or ``(n_i, k)``.  Returns the data in the changed order
        and distribution.
        """
        return self._resort(data, np.float64)

    def resort_ints(self, data: List[np.ndarray]) -> List[np.ndarray]:
        """Redistribute additional per-particle integer data
        (``fcs_resort_ints``)."""
        return self._resort(data, np.int64)

    def resort_bytes(self, data: List[np.ndarray]) -> List[np.ndarray]:
        """Redistribute additional per-particle raw byte data
        (``fcs_resort_bytes``): arbitrary fixed-size per-particle records as
        ``(n_i, k)`` uint8 arrays."""
        return self._resort(data, np.uint8)

    def _resort(self, data: List[np.ndarray], dtype) -> List[np.ndarray]:
        self._check_alive()
        report = self._last_report
        if report is None or not report.changed or report.resort_indices is None:
            raise RuntimeError(
                "resort indices unavailable: the last run did not return the "
                "changed particle order (check resort_availability())"
            )
        if len(data) != self.machine.nprocs:
            raise ValueError(f"{len(data)} data arrays for {self.machine.nprocs} ranks")
        blocks = []
        for r, arr in enumerate(data):
            arr = np.ascontiguousarray(arr, dtype=dtype)
            expected = int(report.old_counts[r])
            if arr.shape[0] != expected:
                raise ValueError(
                    f"rank {r}: data has {arr.shape[0]} rows, original particle "
                    f"count was {expected}"
                )
            blocks.append(ColumnBlock(data=arr))
        comm = "neighborhood" if report.strategy.endswith("neighborhood") else "alltoall"
        out = apply_resort(
            self.machine,
            report.resort_indices,
            blocks,
            [int(c) for c in report.new_counts],
            phase="resort",
            comm=comm,
        )
        return [b["data"] for b in out]

    # -- lifecycle ------------------------------------------------------------------------

    def destroy(self) -> None:
        """Release the solver instance and its resources (``fcs_destroy``)."""
        if not self._destroyed:
            self._solver.destroy()
            self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise RuntimeError("FCS handle already destroyed")

    def __enter__(self) -> "FCS":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "active"
        return f"FCS(method={self.method!r}, {state})"
