"""The ScaFaCoS-like library interface (``fcs_*``).

Mirrors the usage protocol of Sect. II-A of the paper:

>>> fcs = fcs_init("fmm", machine)                     # choose solver
>>> fcs.set_common(box=(248.,)*3, periodic=True)       # system properties
>>> fcs.set_resort(True)                               # opt into method B
>>> fcs.tune(particles)                                # optional tuning step
>>> report = fcs.run(particles)                        # compute interactions
>>> if fcs.resort_availability():                      # did order change?
...     vel, acc, ids = fcs.resort((vel, acc, ids))    # adapt extra data
>>> fcs.destroy()

``run`` computes potentials and fields for the particle positions/charges in
a :class:`~repro.core.particles.ParticleSet`.  With resorting disabled
(method A) the original particle order and distribution is restored; with
resorting enabled (method B) the solver-specific order and distribution is
returned whenever the application's local particle arrays are large enough.

Additional application data the solver does not know about (velocities,
accelerations, ids, ...) is redistributed through the plan-based resort
engine: :meth:`FCS.resort_plan` compiles the run's resort indices once into
a reusable :class:`~repro.core.plan.ResortPlan` (cached across calls *and*
across time steps while the distribution is unchanged), and
:meth:`FCS.resort` moves any number of mixed-dtype data columns in a single
fused exchange.  The historical per-dtype entry points
(``resort_floats``/``resort_ints``/``resort_bytes``) were removed in API
v2 — see docs/migration.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.core.particles import ParticleSet
from repro.core.plan import ResortPlan, ResortPlanStats
from repro.obs.spans import machine_span
from repro.simmpi.machine import Machine
from repro.solvers.base import RunReport, Solver

__all__ = ["FCS", "fcs_init", "register_solver", "available_solvers"]


_REGISTRY: Dict[str, Callable[..., Solver]] = {}


def register_solver(name: str, factory: Callable[..., Solver]) -> None:
    """Register a solver factory under an ``fcs_init`` method name.

    This is the extension point for third-party solvers: any callable with
    the signature ``factory(machine, **kwargs) -> Solver`` can be registered
    and then constructed by name through :func:`fcs_init`, exactly like the
    built-in methods.  Re-registering a name replaces the previous factory.
    """
    _REGISTRY[name] = factory


def _ensure_builtin_registry() -> None:
    # populated lazily to avoid import cycles between core and solvers
    if _REGISTRY:
        return
    from repro.solvers.fmm.solver import FMMSolver
    from repro.solvers.p2nfft.solver import P2NFFTSolver
    from repro.solvers.direct_solver import DirectSolver
    from repro.solvers.ewald_solver import EwaldSolver

    _REGISTRY.setdefault("fmm", FMMSolver)
    _REGISTRY.setdefault("p2nfft", P2NFFTSolver)
    _REGISTRY.setdefault("direct", DirectSolver)
    _REGISTRY.setdefault("ewald", EwaldSolver)


def available_solvers() -> List[str]:
    """Names accepted by :func:`fcs_init`.

    Contains the built-in methods ("direct", "ewald", "fmm", "p2nfft") plus
    anything added through :func:`register_solver`; custom solvers appear
    here as soon as they are registered.
    """
    _ensure_builtin_registry()
    return sorted(_REGISTRY)


def fcs_init(
    method: Union[str, Solver], machine: Machine, **solver_kwargs
) -> "FCS":
    """Create a new solver handle (``fcs_init``).

    ``method`` selects the solver — either a registry name ("fmm",
    "p2nfft", "direct", "ewald", or anything added via
    :func:`register_solver`) or an already-constructed :class:`Solver`
    instance, which lets applications wrap solvers that take rich
    construction arguments without registering a factory.  ``machine``
    plays the role of the MPI communicator specifying the group of parallel
    processes that execute the solver.
    """
    if isinstance(method, Solver):
        if solver_kwargs:
            raise TypeError(
                "solver keyword arguments only apply when constructing by "
                "name; the given Solver instance is already constructed"
            )
        if method.machine is not machine:
            raise ValueError(
                "the Solver instance was constructed for a different machine"
            )
        return FCS(method, machine)
    _ensure_builtin_registry()
    try:
        factory = _REGISTRY[method]
    except KeyError:
        raise ValueError(
            f"unknown solver {method!r}; available: {available_solvers()}"
        ) from None
    return FCS(factory(machine, **solver_kwargs), machine)


class FCS:
    """Handle for one solver instance (the ``FCS`` handle of the C API)."""

    def __init__(self, solver: Solver, machine: Machine) -> None:
        self._solver = solver
        self.machine = machine
        self._resort_requested = False
        self._max_move: Optional[float] = None
        self._last_report: Optional[RunReport] = None
        self._plan: Optional[ResortPlan] = None
        self._retired_plan_stats = ResortPlanStats()
        self._destroyed = False

    # -- configuration -----------------------------------------------------------

    @property
    def method(self) -> str:
        return self._solver.name

    @property
    def solver(self) -> Solver:
        """The underlying solver (for solver-specific setter functions)."""
        return self._solver

    # -- observability accessors (API v2) -----------------------------------------

    @property
    def trace(self):
        """The machine's :class:`~repro.simmpi.tracing.Trace` — per-phase
        virtual time / message / byte aggregates of everything this handle
        (and anything else on the machine) has charged."""
        return self.machine.trace

    @property
    def metrics(self):
        """A :class:`~repro.obs.metrics.MetricsRegistry` view of this run.

        When an :class:`~repro.obs.spans.ObsRecorder` is attached
        (``repro.obs.enable_observability``) this is its *live* registry;
        otherwise a snapshot registry is derived from the machine trace on
        each access (counters and per-phase comm aggregates only).
        """
        from repro.obs.metrics import from_trace

        obs = self.machine.obs
        if obs is not None:
            return obs.metrics
        return from_trace(self.machine.trace)

    def set_common(
        self, *, box, offset=(0.0, 0.0, 0.0), periodic: bool = True
    ) -> None:
        """Set particle-system properties (``fcs_set_common``).

        All arguments are keyword-only (API v2 — the historical positional
        form silently swapped ``box``/``offset``; see docs/migration.md):

        ``box``
            edge lengths of the (cuboid) system box, a positive 3-vector.
        ``offset``
            lower corner of the box (default: the origin).
        ``periodic``
            whether the system is fully periodic.

        Arguments are validated by :meth:`repro.solvers.base.Solver.set_common`
        — a non-finite or non-positive box, or malformed 3-vectors, raise
        ``ValueError`` immediately rather than corrupting a later ``run``.
        """
        self._check_alive()
        self._solver.set_common(box=box, offset=offset, periodic=periodic)

    def set_resort(self, flag: bool) -> None:
        """Opt into method B: request the solver-specific particle order and
        distribution to be returned from :meth:`run`."""
        self._check_alive()
        self._resort_requested = bool(flag)

    def set_max_particle_move(self, max_move: Optional[float]) -> None:
        """Pass the application's bound on the maximum particle movement
        since the previous :meth:`run` (``None`` = unknown).  Enables the
        limited-movement redistribution strategies."""
        self._check_alive()
        if max_move is not None and max_move < 0:
            raise ValueError(f"max_move must be non-negative, got {max_move}")
        self._max_move = max_move

    # -- execution -----------------------------------------------------------------

    def tune(self, particles: ParticleSet, accuracy: float = 1e-3) -> None:
        """Tuning step (``fcs_tune``)."""
        self._check_alive()
        self._solver.tune(particles, accuracy)

    def run(self, particles: ParticleSet) -> RunReport:
        """Compute the long-range interactions (``fcs_run``).

        Writes potentials and fields into ``particles``.  Returns the run
        report; use :meth:`resort_availability` for the paper's query
        function telling whether the particle order and distribution was
        changed.
        """
        self._check_alive()
        with machine_span(
            self.machine, "fcs.run", op="solver.run",
            solver=self.method, resort=self._resort_requested,
        ):
            report = self._solver.run(
                particles, resort=self._resort_requested, max_move=self._max_move
            )
        obs = self.machine.obs
        if obs is not None:
            obs.metrics.counter("solver.runs", solver=self.method).inc()
        self._last_report = report
        self._max_move = None  # a bound holds for one run only
        return report

    # -- method B support --------------------------------------------------------------

    @property
    def last_report(self) -> Optional[RunReport]:
        """The :class:`RunReport` of the most recent :meth:`run` (``None``
        before any run) — exposed for the verification subsystem's
        resort-index invariants."""
        return self._last_report

    def resort_availability(self) -> bool:
        """Whether the last run returned the changed (solver-specific)
        particle order and distribution, i.e. whether resort indices exist.

        ``False`` after a method-A run, before any run, or when the local
        particle data arrays of at least one process were too small so the
        original order and distribution had to be restored.
        """
        return bool(self._last_report and self._last_report.changed)

    @property
    def plan_stats(self) -> ResortPlanStats:
        """Aggregated plan-engine statistics for this handle: schedule
        compiles, cache hits, fused executions, columns and payload bytes
        moved — across every plan this handle has compiled."""
        stats = self._retired_plan_stats
        if self._plan is not None:
            stats = stats.merged(self._plan.stats)
        return stats

    def resort_plan(self) -> ResortPlan:
        """Return the compiled redistribution plan for the last run's resort
        indices (``fcs_resort_plan``).

        The plan is compiled on first request and cached on the handle;
        subsequent requests — including across later :meth:`run` calls whose
        resort indices turn out identical (a particle distribution that did
        not change between time steps) — reuse it after an explicit validity
        check, skipping schedule compilation entirely.
        """
        self._check_alive()
        report = self._require_resort_report()
        plan = self._plan
        if plan is not None and plan.matches(
            report.resort_indices,
            report.old_counts,
            report.new_counts,
            comm=report.comm,
        ):
            plan.stats.cache_hits += 1
            self.machine.trace.bump("resort_plan.cache_hits")
            if self.machine.obs is not None:
                self.machine.obs.metrics.counter("resort_plan.cache_hits").inc()
            return plan
        if plan is not None:
            self._retired_plan_stats = self._retired_plan_stats.merged(plan.stats)
        plan = ResortPlan(
            self.machine,
            report.resort_indices,
            [int(c) for c in report.old_counts],
            [int(c) for c in report.new_counts],
            comm=report.comm,
            phase="resort",
        )
        self._plan = plan
        return plan

    def resort(
        self,
        data,
        columns=None,
        *,
        plan: Optional[ResortPlan] = None,
    ):
        """Redistribute additional per-particle data (``fcs_resort``).

        The unified resort entry point: moves one or many data columns of
        arbitrary dtype from the original to the changed order and
        distribution in a **single** fused exchange, driven by the cached
        :class:`~repro.core.plan.ResortPlan`.

        Parameters
        ----------
        data:
            either one column (a list with one array per rank — returned as
            one list of arrays) or a sequence of columns
            (``data[c][r]`` — returned as a list of columns).  Columns keep
            their dtypes; shapes may be ``(n_i,)`` or ``(n_i, k)``.
        plan:
            an explicit plan from :meth:`resort_plan` (also accepted as the
            first positional argument: ``fcs.resort(plan, data)``).  When
            omitted, the handle's cached plan is used (compiling it if
            needed).  A plan that no longer matches the last run's resort
            indices raises ``ValueError``.
        """
        self._check_alive()
        if isinstance(data, ResortPlan):
            if plan is not None:
                raise TypeError("pass the plan positionally or as plan=, not both")
            if columns is None:
                raise TypeError("fcs.resort(plan, data): data columns are required")
            plan, data = data, columns
        elif columns is not None:
            raise TypeError(
                "the second positional argument is only valid when the first "
                "is a ResortPlan"
            )
        report = self._require_resort_report()
        if plan is None:
            plan = self.resort_plan()
        elif not plan.matches(
            report.resort_indices,
            report.old_counts,
            report.new_counts,
            comm=report.comm,
        ):
            raise ValueError(
                "stale resort plan: it does not match the last run's resort "
                "indices; request a fresh one with fcs.resort_plan()"
            )
        data = list(data)
        single = bool(data) and all(isinstance(a, np.ndarray) for a in data)
        cols = [data] if single else data
        for col in cols:
            if len(col) != self.machine.nprocs:
                raise ValueError(
                    f"{len(col)} data arrays for {self.machine.nprocs} ranks"
                )
        out = plan.execute(cols)
        return out[0] if single else out

    def _require_resort_report(self) -> RunReport:
        report = self._last_report
        if report is None or not report.changed or report.resort_indices is None:
            raise RuntimeError(
                "resort indices unavailable: the last run did not return the "
                "changed particle order (check resort_availability())"
            )
        return report

    # -- lifecycle ------------------------------------------------------------------------

    def destroy(self) -> None:
        """Release the solver instance and its resources (``fcs_destroy``)."""
        if not self._destroyed:
            self._solver.destroy()
            self._plan = None
            self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise RuntimeError("FCS handle already destroyed")

    def __enter__(self) -> "FCS":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy()

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else "active"
        return f"FCS(method={self.method!r}, {state})"
