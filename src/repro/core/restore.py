"""Method A: restoring the original particle order and distribution.

Both solvers carry a packed 64-bit *index value* per particle copy (source
rank in the upper 32 bits, source position in the lower 32 — Sect. III-A)
through their reordering.  Restoring sends each calculated result back to
the particle's initial process with the fine-grained redistribution
operation and then scatters it to the initial position with a local
permutation.  The application's position/charge arrays are untouched (the
solvers work on copies), so after the restore everything is exactly as the
application submitted it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.fine_grained import fine_grained_redistribute
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import unpack_resort_index
from repro.simmpi.machine import Machine

__all__ = ["restore_results"]


def restore_results(
    machine: Machine,
    origloc: Sequence[np.ndarray],
    pots: Sequence[np.ndarray],
    fields: Sequence[np.ndarray],
    particles: ParticleSet,
    old_counts: Sequence[int],
    phase: str = "restore",
) -> None:
    """Send potentials/fields back to each particle's initial location.

    ``origloc[r]`` holds the packed initial location of every particle
    currently on rank ``r``; results are written into ``particles.pot`` and
    ``particles.field`` in the application's original order.
    """
    result_blocks = [
        ColumnBlock(origloc=np.asarray(origloc[r], dtype=np.int64), pot=pots[r], field=fields[r])
        for r in range(machine.nprocs)
    ]

    def to_origin(rank: int, block: ColumnBlock) -> np.ndarray:
        ranks, _ = unpack_resort_index(block["origloc"])
        return ranks

    received = fine_grained_redistribute(
        machine, result_blocks, to_origin, phase=phase, comm="alltoall"
    )
    per_rank_bytes = np.zeros(machine.nprocs)
    for r, block in enumerate(received):
        n = int(old_counts[r])
        if block.n != n:
            raise RuntimeError(
                f"rank {r}: restore received {block.n} results for {n} particles"
            )
        _, pos_idx = unpack_resort_index(block["origloc"])
        pot = np.empty(n)
        field = np.empty((n, 3))
        pot[pos_idx] = block["pot"]
        field[pos_idx] = block["field"]
        particles.pot[r] = pot
        particles.field[r] = field
        per_rank_bytes[r] = block.nbytes
    machine.copy(per_rank_bytes, phase=phase)
