"""The paper's core contribution: the coupling-library interface and the two
particle data redistribution methods.

Public entry points
-------------------
:func:`~repro.core.handle.fcs_init` / :class:`~repro.core.handle.FCS`
    ScaFaCoS-like solver handle (``fcs_init``, ``fcs_set_common``,
    ``fcs_tune``, ``fcs_run``, ``fcs_resort_floats``, ``fcs_destroy``).
:class:`~repro.core.particles.ParticleSet`
    the application's distributed particle data (positions, charges, and the
    per-rank capacity limits that gate method B).
:mod:`~repro.core.fine_grained`
    the fine-grained data redistribution operation [13,14]: every element is
    sent to an individually computed target process, with optional
    duplication (ghost particles).
:mod:`~repro.core.resort`
    64-bit resort indices (target rank << 32 | target position), their
    creation by permutation inversion, and their application to additional
    application data (velocities, accelerations).
:mod:`~repro.core.movement`
    maximum-movement bookkeeping and the heuristics of Sect. III-B.
"""

from repro.core.handle import FCS, fcs_init
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.resort import (
    RESORT_POS_BITS,
    pack_resort_index,
    unpack_resort_index,
)

__all__ = [
    "FCS",
    "fcs_init",
    "ColumnBlock",
    "ParticleSet",
    "RESORT_POS_BITS",
    "pack_resort_index",
    "unpack_resort_index",
]
