"""The paper's core contribution: the coupling-library interface and the two
particle data redistribution methods.

Public entry points
-------------------
:func:`~repro.core.handle.fcs_init` / :class:`~repro.core.handle.FCS`
    ScaFaCoS-like solver handle (``fcs_init``, ``fcs_set_common``,
    ``fcs_tune``, ``fcs_run``, ``fcs_resort``, ``fcs_destroy``).
:class:`~repro.core.plan.ResortPlan`
    the plan-based resort engine: a run's resort indices compiled once into
    a reusable schedule that moves any number of mixed-dtype data columns in
    one fused exchange (see :meth:`~repro.core.handle.FCS.resort_plan`).
:class:`~repro.core.particles.ParticleSet`
    the application's distributed particle data (positions, charges, and the
    per-rank capacity limits that gate method B).
:mod:`~repro.core.fine_grained`
    the fine-grained data redistribution operation [13,14]: every element is
    sent to an individually computed target process, with optional
    duplication (ghost particles).
:mod:`~repro.core.resort`
    64-bit resort indices (target rank << 32 | target position), their
    creation by permutation inversion, and their application to additional
    application data (velocities, accelerations).
:mod:`~repro.core.movement`
    maximum-movement bookkeeping and the heuristics of Sect. III-B.
"""

from repro.core.handle import FCS, fcs_init
from repro.core.particles import ColumnBlock, ParticleSet
from repro.core.plan import ResortPlan, ResortPlanStats
from repro.core.resort import (
    RESORT_POS_BITS,
    pack_resort_index,
    unpack_resort_index,
)

__all__ = [
    "FCS",
    "fcs_init",
    "ColumnBlock",
    "ParticleSet",
    "ResortPlan",
    "ResortPlanStats",
    "RESORT_POS_BITS",
    "pack_resort_index",
    "unpack_resort_index",
]
