"""Maximum-movement bookkeeping and the limited-movement heuristics.

Within a particle dynamics simulation the positions "change only slightly
from one time step to the next" (Sect. III-B).  The application can
determine the maximum movement of the particles during the position update
and pass it to the solver, which uses it to pick cheaper redistribution
strategies:

* **FMM** — if the maximum movement is less than the side length of a cube
  holding the average per-process volume of the system, the particles are
  "almost sorted" and the solver switches from the partition-based parallel
  sorting (collective all-to-all) to the merge-based parallel sorting
  (point-to-point merge-exchange) — :func:`fmm_prefers_merge_sort`.
* **P2NFFT** — if the maximum movement restricts redistribution to direct
  neighbors within the process grid, all-to-all communication is replaced
  by neighborhood communication — :func:`p2nfft_prefers_neighborhood`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.simmpi.cart import CartGrid
from repro.simmpi.collectives import allreduce
from repro.simmpi.machine import Machine

__all__ = [
    "max_movement",
    "process_cube_side",
    "fmm_prefers_merge_sort",
    "p2nfft_prefers_neighborhood",
    "MovementTracker",
]


def max_movement(
    machine: Machine,
    old_pos: Sequence[np.ndarray],
    new_pos: Sequence[np.ndarray],
    box: Optional[np.ndarray] = None,
    phase: Optional[str] = None,
) -> float:
    """Global maximum particle displacement between two position sets.

    Computed locally per rank, then reduced with an allreduce(max) — the
    communication the application pays to enable the heuristics.  With a
    periodic ``box``, displacements use the minimum image convention.
    """
    local = np.zeros(machine.nprocs, dtype=np.float64)
    for r, (a, b) in enumerate(zip(old_pos, new_pos)):
        if a.shape != b.shape:
            raise ValueError(f"rank {r}: position shapes differ: {a.shape} vs {b.shape}")
        if a.size == 0:
            continue
        d = b - a
        if box is not None:
            d -= np.round(d / box) * box
        local[r] = float(np.sqrt((d * d).sum(axis=1).max()))
        machine.compute(1.0e-9 * a.shape[0], phase)
    return float(allreduce(machine, local, op="max", phase=phase))


def process_cube_side(box: np.ndarray, nprocs: int) -> float:
    """Side length of a cube with the average per-process volume.

    "The total volume of the particle system is divided by the number of
    parallel processes and it is assumed that the resulting volume per
    process represents a cube shaped subdomain" (Sect. III-B).
    """
    box = np.asarray(box, dtype=np.float64)
    volume = float(np.prod(box))
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    return (volume / nprocs) ** (1.0 / 3.0)


def fmm_prefers_merge_sort(box: np.ndarray, nprocs: int, max_move: float) -> bool:
    """FMM heuristic: merge-based sorting for almost-sorted particles."""
    return max_move < process_cube_side(box, nprocs)


def p2nfft_prefers_neighborhood(grid: CartGrid, max_move: float) -> bool:
    """P2NFFT heuristic: neighborhood communication when movement stays
    within direct grid neighbors."""
    return max_move < grid.max_neighbor_extent()


class MovementTracker:
    """Tracks the maximum particle movement across time steps.

    The application updates the tracker during each position update
    (:meth:`observe`); solvers read :attr:`current` through the library's
    ``set_max_particle_move`` path.  ``None`` means "unknown" — solvers then
    must assume arbitrary movement and use the general strategies.
    """

    def __init__(self) -> None:
        self.current: Optional[float] = None
        self.history: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0:
            raise ValueError(f"movement must be non-negative, got {value}")
        self.current = value
        self.history.append(value)

    def invalidate(self) -> None:
        """Forget the bound (e.g. after an external modification of positions)."""
        self.current = None

    def __repr__(self) -> str:
        return f"MovementTracker(current={self.current}, steps={len(self.history)})"
