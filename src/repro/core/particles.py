"""Distributed particle data containers.

Two containers cover all data handling in the repo:

* :class:`ColumnBlock` — one rank's structure-of-arrays block: named NumPy
  columns of equal leading dimension (positions ``(n, 3)``, charges ``(n,)``,
  packed 64-bit index values ``(n,)``, ...).  All redistribution primitives
  move ``ColumnBlock`` payloads so that the columns of a particle always
  travel together in one message, as the ScaFaCoS implementations do.
* :class:`ParticleSet` — the application-facing distributed particle system:
  per-rank ``ColumnBlock`` s plus the per-rank *capacity* (the "maximum
  number of particles that can be stored in the local particle data arrays"
  passed to ``fcs_run``), which gates whether method B may return a changed
  distribution (Sect. III-B: if any rank's arrays are too small the original
  distribution must be restored).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["ColumnBlock", "ParticleSet"]

FLOAT = np.float64
INT = np.int64


class ColumnBlock:
    """Named equal-length NumPy columns for one rank's particles."""

    __slots__ = ("_cols", "_n")

    def __init__(self, **columns: np.ndarray) -> None:
        self._cols: Dict[str, np.ndarray] = {}
        self._n: Optional[int] = None
        for name, arr in columns.items():
            self[name] = arr

    # -- mapping interface ----------------------------------------------------

    def __getitem__(self, name: str) -> np.ndarray:
        return self._cols[name]

    def __setitem__(self, name: str, arr: np.ndarray) -> None:
        arr = np.asarray(arr)
        if self._n is None:
            self._n = arr.shape[0] if arr.ndim else int(arr)
        if arr.ndim == 0 or arr.shape[0] != self._n:
            raise ValueError(
                f"column {name!r} has leading dim {arr.shape[:1]}, block has n={self._n}"
            )
        self._cols[name] = arr

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __iter__(self) -> Iterator[str]:
        return iter(self._cols)

    def names(self) -> List[str]:
        return list(self._cols)

    @property
    def n(self) -> int:
        """Number of particles in the block."""
        return 0 if self._n is None else self._n

    @property
    def nbytes(self) -> int:
        """Total payload bytes (what a message carrying the block costs)."""
        return sum(a.nbytes for a in self._cols.values())

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty_like(cls, template: "ColumnBlock", n: int = 0) -> "ColumnBlock":
        """A block with the same columns/dtypes as ``template`` and ``n`` rows."""
        out = cls()
        out._n = n
        for name, arr in template._cols.items():
            out._cols[name] = np.empty((n,) + arr.shape[1:], dtype=arr.dtype)
        return out

    @classmethod
    def concat(cls, blocks: Sequence["ColumnBlock"]) -> "ColumnBlock":
        """Concatenate blocks with identical column sets (order preserved)."""
        blocks = [b for b in blocks]
        if not blocks:
            raise ValueError("cannot concat zero blocks")
        names = blocks[0].names()
        for b in blocks[1:]:
            if b.names() != names:
                raise ValueError(f"column mismatch: {names} vs {b.names()}")
        out = cls()
        out._n = sum(b.n for b in blocks)
        for name in names:
            out._cols[name] = np.concatenate([b._cols[name] for b in blocks])
        return out

    # -- transforms -------------------------------------------------------------

    def take(self, idx: np.ndarray) -> "ColumnBlock":
        """Select rows by index array (copy)."""
        idx = np.asarray(idx)
        out = ColumnBlock()
        out._n = int(idx.shape[0])
        for name, arr in self._cols.items():
            out._cols[name] = arr[idx]
        return out

    def row_slice(self, start: int, end: int) -> "ColumnBlock":
        """Contiguous row range as a zero-copy view block."""
        out = ColumnBlock()
        out._n = int(end - start)
        for name, arr in self._cols.items():
            out._cols[name] = arr[start:end]
        return out

    def copy(self) -> "ColumnBlock":
        out = ColumnBlock()
        out._n = self._n
        for name, arr in self._cols.items():
            out._cols[name] = arr.copy()
        return out

    def permute_inplace(self, perm: np.ndarray) -> None:
        """Reorder rows so new[i] = old[perm[i]] for every column."""
        perm = np.asarray(perm)
        if perm.shape != (self.n,):
            raise ValueError(f"perm has shape {perm.shape}, block has n={self.n}")
        for name, arr in self._cols.items():
            self._cols[name] = arr[perm]

    def drop(self, *names: str) -> "ColumnBlock":
        """A view-block without the given columns."""
        out = ColumnBlock()
        out._n = self._n
        for name, arr in self._cols.items():
            if name not in names:
                out._cols[name] = arr
        return out

    def payload(self) -> tuple:
        """The tuple-of-arrays payload handed to communication primitives."""
        return tuple(self._cols.values())

    def __repr__(self) -> str:
        cols = ", ".join(f"{k}:{v.dtype}{v.shape[1:]}" for k, v in self._cols.items())
        return f"ColumnBlock(n={self.n}, {cols})"


class ParticleSet:
    """The application's distributed particle system.

    Per rank: positions ``(n_i, 3)``, charges ``(n_i,)`` and a capacity
    ``max_local_particles`` (defaults to a uniform slack factor over the
    initial counts).  Solvers write calculated potentials ``(n_i,)`` and
    fields ``(n_i, 3)`` back into the set.
    """

    def __init__(
        self,
        positions: Sequence[np.ndarray],
        charges: Sequence[np.ndarray],
        capacities: Optional[Sequence[int]] = None,
        capacity_factor: float = 2.0,
    ) -> None:
        if len(positions) != len(charges):
            raise ValueError("positions and charges must have one entry per rank")
        self.nprocs = len(positions)
        self.pos: List[np.ndarray] = []
        self.q: List[np.ndarray] = []
        for r, (p, c) in enumerate(zip(positions, charges)):
            p = np.ascontiguousarray(p, dtype=FLOAT)
            c = np.ascontiguousarray(c, dtype=FLOAT)
            if p.ndim != 2 or p.shape[1] != 3:
                raise ValueError(f"rank {r}: positions must be (n, 3), got {p.shape}")
            if c.shape != (p.shape[0],):
                raise ValueError(f"rank {r}: charges must be (n,), got {c.shape}")
            self.pos.append(p)
            self.q.append(c)
        n_total = self.total()
        if capacities is None:
            # uniform capacity with slack, at least enough for a balanced
            # distribution of the whole system plus imbalance headroom
            per_rank = max(1, -(-n_total // max(self.nprocs, 1)))
            cap = int(np.ceil(capacity_factor * per_rank))
            self.capacities = [max(cap, p.shape[0]) for p in self.pos]
        else:
            if len(capacities) != self.nprocs:
                raise ValueError("capacities must have one entry per rank")
            self.capacities = [int(c) for c in capacities]
            for r in range(self.nprocs):
                if self.capacities[r] < self.pos[r].shape[0]:
                    raise ValueError(
                        f"rank {r}: capacity {self.capacities[r]} < local count {self.pos[r].shape[0]}"
                    )
        self.pot: List[np.ndarray] = [np.zeros(p.shape[0], dtype=FLOAT) for p in self.pos]
        self.field: List[np.ndarray] = [np.zeros_like(p) for p in self.pos]

    # -- counts -----------------------------------------------------------------

    def counts(self) -> np.ndarray:
        return np.asarray([p.shape[0] for p in self.pos], dtype=INT)

    def total(self) -> int:
        return int(sum(p.shape[0] for p in self.pos))

    def nlocal(self, rank: int) -> int:
        return self.pos[rank].shape[0]

    # -- whole-system views (testing / observables) --------------------------------

    def gather_positions(self) -> np.ndarray:
        """All positions concatenated rank-major (no communication cost —
        an out-of-band observer view for tests and observables)."""
        return np.concatenate(self.pos) if self.pos else np.empty((0, 3))

    def gather_charges(self) -> np.ndarray:
        return np.concatenate(self.q) if self.q else np.empty(0)

    def gather_potentials(self) -> np.ndarray:
        return np.concatenate(self.pot) if self.pot else np.empty(0)

    def gather_fields(self) -> np.ndarray:
        return np.concatenate(self.field) if self.field else np.empty((0, 3))

    # -- updates ----------------------------------------------------------------

    def replace(
        self,
        rank: int,
        pos: np.ndarray,
        q: np.ndarray,
        pot: np.ndarray,
        field: np.ndarray,
    ) -> None:
        """Install a rank's new local particles (solver output, method B)."""
        n = pos.shape[0]
        if not (q.shape[0] == pot.shape[0] == field.shape[0] == n):
            raise ValueError("inconsistent local array lengths")
        self.pos[rank] = np.ascontiguousarray(pos, dtype=FLOAT)
        self.q[rank] = np.ascontiguousarray(q, dtype=FLOAT)
        self.pot[rank] = np.ascontiguousarray(pot, dtype=FLOAT)
        self.field[rank] = np.ascontiguousarray(field, dtype=FLOAT)

    def fits(self, counts: Iterable[int]) -> bool:
        """Would per-rank particle counts ``counts`` fit the local arrays?

        This is the method-B gate of Sect. III-B: "the redistributed
        particles of a solver can only be returned to the calling application
        if the given local particle data arrays are large enough".
        """
        return all(int(c) <= cap for c, cap in zip(counts, self.capacities))

    def __repr__(self) -> str:
        return (
            f"ParticleSet(nprocs={self.nprocs}, total={self.total()}, "
            f"counts={self.counts().tolist() if self.nprocs <= 16 else '...'})"
        )
