"""Weighted-partition load balancing for inhomogeneous distributions.

The Z-curve partition sort splits the globally sorted Morton keys into
equal-**count** segments — fine for the paper's homogeneous silica melt,
but a clustered (inhomogeneous) system then serializes its near-field work
on the few ranks owning the dense regions.  This module provides the three
ingredients of weighted space-filling-curve partitioning (PetFMM-style,
see docs/load_balancing.md):

* **per-particle work weights** — :func:`occupancy_weights` estimates each
  particle's near-field pair count from the occupancy of its linked-cell /
  FMM leaf box (particles in dense boxes interact with more neighbors);
  uniform weights are the fallback and reduce everything to the existing
  count-based behavior,
* **weighted split bounds** — :func:`work_split_bounds` places the part
  boundaries at equal *cumulative work* instead of equal counts; no part
  exceeds the mean work by more than the heaviest single particle,
* **the imbalance monitor** — :class:`ImbalanceMonitor` watches the
  per-step load-imbalance factor ``lambda = max(rank work) / mean(rank
  work)`` and decides (with hysteresis) when a dynamic rebalance pays for
  its one-off redistribution cost.

Everything here is pure local arithmetic: the communication needed to
*apply* a rebalance (the weight column riding the sort exchange, the key
allgather estimating global box occupancy) is charged by the callers
through the usual audited primitives.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "BalanceEvent",
    "ImbalanceMonitor",
    "count_split_bounds",
    "load_imbalance",
    "occupancy_weights",
    "work_split_bounds",
]

#: the accepted values of ``SimulationConfig.load_balance``
LOAD_BALANCE_MODES = ("off", "static", "dynamic")


# -- weights ---------------------------------------------------------------------


def occupancy_weights(keys: np.ndarray) -> np.ndarray:
    """Near-field work weight of each particle: its leaf-box occupancy.

    A particle in a box holding ``k`` particles contributes ``O(k)`` pair
    interactions (against its own box and, for near-uniform neighborhoods,
    proportionally against the 26 adjacent boxes), so the multiplicity of
    its key in ``keys`` is the linked-cell pair estimate up to a constant
    factor — and constant factors cancel in the split bounds.  Uniform
    distributions therefore get (near-)uniform weights and the weighted
    split reduces to the count-based one.
    """
    keys = np.asarray(keys)
    if keys.size == 0:
        return np.zeros(0, dtype=np.float64)
    uniq, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    return counts[inverse].astype(np.float64)


# -- split bounds -----------------------------------------------------------------


def count_split_bounds(n: int, nparts: int) -> np.ndarray:
    """Count-balanced part boundaries: ``nparts + 1`` prefix positions.

    Defined as :func:`work_split_bounds` under uniform weights so the two
    stay bitwise-consistent (the reduction property the weighted-splitter
    tests pin down), which in turn matches the historical truncation
    convention ``bounds[i] = floor(i * n / nparts)`` of the count-based
    splitter.
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    n = int(n)
    bounds = np.empty(nparts + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[nparts] = n
    if nparts > 1:
        cum = np.arange(1, n + 1, dtype=np.float64)
        targets = np.arange(1, nparts, dtype=np.float64) * (float(n) / nparts)
        bounds[1:nparts] = np.searchsorted(cum, targets, side="right")
    return bounds


def work_split_bounds(weights: np.ndarray, nparts: int) -> np.ndarray:
    """Part boundaries equalizing cumulative work along the sorted order.

    ``weights`` are the per-element work estimates **in globally sorted key
    order**; the returned ``nparts + 1`` monotone prefix positions satisfy
    the regular-sampling quality bound of sample sort, transplanted from
    counts to work:

        ``work(part k) < total / nparts + max(weights)``

    i.e. no part exceeds the mean work by more than the heaviest single
    element — the granularity limit of any contiguous split.  All-zero (or
    empty) weights degrade to :func:`count_split_bounds`; uniform positive
    weights yield bitwise-identical bounds to the count-based split
    (exactly so for power-of-two weight values, where scaling commutes
    with float rounding).
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError(f"weights must be 1-D, got shape {w.shape}")
    if w.size and float(w.min()) < 0.0:
        raise ValueError("weights must be non-negative")
    n = w.shape[0]
    if n == 0 or nparts == 1:
        return count_split_bounds(n, nparts)
    cumw = np.cumsum(w)
    total = float(cumw[-1])
    if total <= 0.0:
        return count_split_bounds(n, nparts)
    bounds = np.empty(nparts + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[nparts] = n
    targets = np.arange(1, nparts, dtype=np.float64) * (total / nparts)
    bounds[1:nparts] = np.searchsorted(cumw, targets, side="right")
    return bounds


# -- the imbalance factor ---------------------------------------------------------


def load_imbalance(rank_work: np.ndarray) -> float:
    """The load-imbalance factor ``lambda = max(rank work) / mean(rank work)``.

    1.0 is perfect balance; ``nprocs`` is full serialization on one rank.
    Zero or negative total work (nothing measured) reports 1.0 — a system
    doing no work is trivially balanced.
    """
    work = np.asarray(rank_work, dtype=np.float64)
    if work.size == 0:
        return 1.0
    mean = float(work.mean())
    if mean <= 0.0:
        return 1.0
    return float(work.max()) / mean


@dataclasses.dataclass
class BalanceEvent:
    """One monitor-triggered rebalance: when, and what it bought.

    ``lambda_after`` is filled by the first observation *after* the
    rebalance has been applied (``None`` until then).
    """

    step: int
    lambda_before: float
    lambda_after: Optional[float] = None


class ImbalanceMonitor:
    """Hysteresis controller for dynamic rebalancing.

    Fires (returns ``True`` from :meth:`observe`) when the imbalance factor
    reaches ``trigger`` while the monitor is *armed*; firing disarms it.
    The monitor re-arms only once the imbalance has dropped to ``rearm`` or
    below — so a rebalance that lands the system anywhere in the dead band
    ``(rearm, trigger)`` does not cause fire/re-fire oscillation, and a
    rebalance that cannot improve matters (weights at their granularity
    limit) fires exactly once instead of every step.

    The monitor reads only *nominal* (pre-perturbation) per-rank work, so
    its decisions are schedule-independent — the DST property that dynamic
    balancing must not break.
    """

    def __init__(
        self,
        trigger: float = 1.5,
        rearm: float = 1.15,
        min_interval: int = 1,
    ) -> None:
        if not trigger > rearm >= 1.0:
            raise ValueError(
                f"need trigger > rearm >= 1, got trigger={trigger}, rearm={rearm}"
            )
        if min_interval < 1:
            raise ValueError(f"min_interval must be >= 1, got {min_interval}")
        self.trigger = float(trigger)
        self.rearm = float(rearm)
        self.min_interval = int(min_interval)
        #: every observed imbalance factor, in observation order
        self.history: List[float] = []
        #: every fired rebalance with its before/after imbalance
        self.events: List[BalanceEvent] = []
        self._armed = True
        self._last_fire_step: Optional[int] = None

    @property
    def armed(self) -> bool:
        return self._armed

    def observe(self, rank_work: np.ndarray, step: Optional[int] = None) -> bool:
        """Record one step's per-rank work; return whether to rebalance now.

        ``step`` labels the observation (defaults to the observation index);
        the caller applies the rebalance on its *next* solver run, so the
        following observation fills the event's ``lambda_after``.
        """
        lam = load_imbalance(rank_work)
        if step is None:
            step = len(self.history)
        self.history.append(lam)
        if self.events and self.events[-1].lambda_after is None:
            self.events[-1].lambda_after = lam
        if not self._armed and lam <= self.rearm:
            self._armed = True
        fire = (
            self._armed
            and lam >= self.trigger
            and (
                self._last_fire_step is None
                or step - self._last_fire_step >= self.min_interval
            )
        )
        if fire:
            self._armed = False
            self._last_fire_step = step
            self.events.append(BalanceEvent(step=step, lambda_before=lam))
        return fire

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Complete monitor state for checkpointing (config + hysteresis).

        The λ history and event log are part of the state: the restored
        monitor must fill a pending event's ``lambda_after`` and honor
        ``min_interval`` exactly as the uninterrupted run would.
        """
        return {
            "trigger": self.trigger,
            "rearm": self.rearm,
            "min_interval": self.min_interval,
            "history": list(self.history),
            "events": [
                {
                    "step": e.step,
                    "lambda_before": e.lambda_before,
                    "lambda_after": e.lambda_after,
                }
                for e in self.events
            ],
            "armed": self._armed,
            "last_fire_step": self._last_fire_step,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Replace the monitor's full state with a :meth:`state_dict` copy."""
        self.trigger = float(state["trigger"])
        self.rearm = float(state["rearm"])
        self.min_interval = int(state["min_interval"])
        self.history = [float(x) for x in state.get("history", [])]
        self.events = [
            BalanceEvent(
                step=int(e["step"]),
                lambda_before=float(e["lambda_before"]),
                lambda_after=(
                    None if e.get("lambda_after") is None else float(e["lambda_after"])
                ),
            )
            for e in state.get("events", [])
        ]
        self._armed = bool(state.get("armed", True))
        last = state.get("last_fire_step")
        self._last_fire_step = None if last is None else int(last)

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ImbalanceMonitor":
        """Build a monitor directly from a :meth:`state_dict` copy."""
        monitor = cls(
            trigger=float(state["trigger"]),
            rearm=float(state["rearm"]),
            min_interval=int(state["min_interval"]),
        )
        monitor.load_state(state)
        return monitor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        last = f"{self.history[-1]:.3f}" if self.history else "-"
        return (
            f"ImbalanceMonitor(trigger={self.trigger}, rearm={self.rearm}, "
            f"armed={self._armed}, last_lambda={last}, fires={len(self.events)})"
        )
