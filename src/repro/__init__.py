"""repro — reproduction of Hofmann & Rünger, *Efficient Data Redistribution
Methods for Coupled Parallel Particle Codes* (ICPP 2013).

The package couples a particle dynamics simulation to two long-range
interaction solvers (a tree-based FMM with Z-order-curve domain
decomposition and a grid-based P2NFFT-style Ewald mesh solver with
Cartesian process-grid decomposition) through a ScaFaCoS-like library
interface, and implements the paper's two particle data redistribution
methods:

* **Method A** — restore the application's original particle order and
  distribution after every solver execution;
* **Method B** — keep the solver-specific order and distribution and resort
  the application's additional particle data via *resort indices*, with
  optional exploitation of the limited per-step particle movement
  (merge-based parallel sorting / neighborhood communication).

Start with :func:`repro.core.fcs_init` (the library interface) or
:class:`repro.md.Simulation` (the coupled application).  See README.md for
a quickstart and DESIGN.md for the full system inventory.
"""

__version__ = "1.0.0"

from repro.core.handle import FCS, fcs_init

__all__ = ["FCS", "fcs_init", "__version__"]
