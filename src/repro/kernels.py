"""Nominal compute-kernel cost constants (seconds on a JuRoPA-class core).

Every compute phase of the solvers and the application charges the machine
clocks through these constants, scaled by the *actual* workload counts the
algorithms produce on real data (real particle pair counts, real expansion
sizes, real mesh sizes).  The constants are order-of-magnitude estimates of
optimized C kernels on the paper's 2013 hardware; they are shape parameters
of the performance model, not measurements (DESIGN.md §5).

All values are per elementary operation:
"""

#: one comparison-move step of a record sort, per element and per log2(n)
#: pass (40-80 byte particle records, cache-unfriendly gathers)
SORT_STEP = 2.5e-8

#: one comparison-move step of a bare 8-byte key sort (splitter samples)
KEY_SORT_STEP = 5.0e-9

#: one pairwise charge-charge interaction (distance, 1/r kernel, accumulate)
PAIR_INTERACTION = 8.0e-9

#: one Ewald real-space pair (erfc + exp evaluation: ~2-3x a plain pair)
ERFC_PAIR = 2.0e-8

#: one multipole/local expansion coefficient multiply-accumulate
EXPANSION_TERM = 2.5e-9

#: generating one particle's Morton key (scale, floor, interleave)
KEY_GENERATION = 4.0e-9

#: assigning one particle to the mesh (CIC: 8 cells) or back-interpolating
MESH_ASSIGNMENT = 2.4e-8

#: one complex mesh point per log2(M^3) butterfly stage of an FFT
FFT_POINT_STAGE = 2.0e-9

#: one particle's leapfrog position/velocity update
INTEGRATION_STEP = 8.0e-9

#: one particle's linked-cell binning step
CELL_BINNING = 6.0e-9
