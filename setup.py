"""Shim for environments without the ``wheel`` package (offline PEP 660
editable installs need it).  ``pip install -e . --no-build-isolation`` uses
this via the legacy path; configuration lives in pyproject.toml."""

from setuptools import setup

setup()
